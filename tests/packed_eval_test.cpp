// Differential tests for the bit-packed word-parallel datapath evaluation
// (CoreConfig::datapath_eval = kPacked): on every core kind the packed
// path must reproduce the full-recompute reference and the incremental
// path byte for byte — the complete RunResult, timeline included — across
// window sizes that exercise partial words, shared ALUs, real memory
// models, speculation, and squashes. Packed mode is fallback-free: fault
// plans, store forwarding, telemetry, and pipelined datapaths all run
// inside the packed cycle loops (RunStats::fallback_count must stay 0)
// and still match byte for byte. Checkpoint round-trips under packed
// evaluation must resume cycle-for-cycle identically. See docs/runtime.md,
// "Bit-packed evaluation".
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/ensemble.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using core::CoreConfig;
using core::DatapathEval;
using core::ProcessorKind;
using core::RunResult;

constexpr ProcessorKind kAllKinds[] = {
    ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
    ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid};

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.halted, b.halted);
  ASSERT_EQ(a.cycles, b.cycles);
  ASSERT_EQ(a.committed, b.committed);
  ASSERT_EQ(a.regs, b.regs);
  ASSERT_EQ(a.memory, b.memory);
  ASSERT_EQ(a.stats.mispredictions, b.stats.mispredictions);
  ASSERT_EQ(a.stats.forwarded_loads, b.stats.forwarded_loads);
  ASSERT_EQ(a.stats.squashed_instructions, b.stats.squashed_instructions);
  ASSERT_EQ(a.stats.load_count, b.stats.load_count);
  ASSERT_EQ(a.stats.store_count, b.stats.store_count);
  ASSERT_EQ(a.stats.fetch_stall_cycles, b.stats.fetch_stall_cycles);
  ASSERT_EQ(a.stats.window_full_cycles, b.stats.window_full_cycles);
  ASSERT_EQ(a.stats.fault.injected, b.stats.fault.injected);
  ASSERT_EQ(a.stats.fault.squashes, b.stats.fault.squashes);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t t = 0; t < a.timeline.size(); ++t) {
    ASSERT_EQ(a.timeline[t].seq, b.timeline[t].seq) << "t=" << t;
    ASSERT_EQ(a.timeline[t].station, b.timeline[t].station) << "t=" << t;
    ASSERT_EQ(a.timeline[t].pc, b.timeline[t].pc) << "t=" << t;
    ASSERT_EQ(a.timeline[t].fetch_cycle, b.timeline[t].fetch_cycle)
        << "t=" << t;
    ASSERT_EQ(a.timeline[t].issue_cycle, b.timeline[t].issue_cycle)
        << "t=" << t;
    ASSERT_EQ(a.timeline[t].complete_cycle, b.timeline[t].complete_cycle)
        << "t=" << t;
    ASSERT_EQ(a.timeline[t].commit_cycle, b.timeline[t].commit_cycle)
        << "t=" << t;
  }
}

/// Runs @p cfg under all three evaluation paths on every core kind and
/// requires byte-identical results.
void ExpectAllEvalPathsAgree(const isa::Program& program, CoreConfig cfg) {
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    cfg.datapath_eval = DatapathEval::kFullRecompute;
    const RunResult full = core::MakeProcessor(kind, cfg)->Run(program);
    cfg.datapath_eval = DatapathEval::kIncremental;
    const RunResult incr = core::MakeProcessor(kind, cfg)->Run(program);
    cfg.datapath_eval = DatapathEval::kPacked;
    const RunResult packed = core::MakeProcessor(kind, cfg)->Run(program);
    {
      SCOPED_TRACE("incremental vs full");
      ExpectSameRun(incr, full);
    }
    {
      SCOPED_TRACE("packed vs incremental");
      ExpectSameRun(packed, incr);
    }
  }
}

// Window sizes straddling the 64-lane word boundary: sub-word, exact
// words, and partial tail words.
class PackedEvalWindows : public testing::TestWithParam<int> {};

TEST_P(PackedEvalWindows, ChainsAgreeOnAllCores) {
  CoreConfig cfg;
  cfg.window_size = GetParam();
  cfg.cluster_size = GetParam() < 8 ? GetParam() : 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectAllEvalPathsAgree(
      workloads::DependencyChains({.num_instructions = 600, .ilp = 4}), cfg);
}

TEST_P(PackedEvalWindows, MemoryMixAgreesOnAllCores) {
  CoreConfig cfg;
  cfg.window_size = GetParam();
  cfg.cluster_size = GetParam() < 8 ? GetParam() : 8;
  cfg.mem.mode = memory::MemTimingMode::kFatTree;
  ExpectAllEvalPathsAgree(
      workloads::RandomMix({.num_instructions = 500, .load_fraction = 0.3,
                            .store_fraction = 0.2, .memory_words = 64,
                            .seed = 11}),
      cfg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackedEvalWindows,
                         testing::Values(7, 63, 64, 65, 100, 128, 200),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(PackedEval, SpeculationWithSharedAlusAndPredictors) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 80, .block_size = 6, .seed = 5});
  for (const auto predictor :
       {core::PredictorKind::kNotTaken, core::PredictorKind::kTwoBit}) {
    SCOPED_TRACE(static_cast<int>(predictor));
    CoreConfig cfg;
    cfg.window_size = 96;
    cfg.num_alus = 3;
    cfg.predictor = predictor;
    cfg.fetch_mode = core::FetchMode::kBasicBlock;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    ExpectAllEvalPathsAgree(program, cfg);
  }
}

TEST(PackedEval, KernelsAgreeOnAllCores) {
  CoreConfig cfg;
  cfg.window_size = 72;
  cfg.mem.mode = memory::MemTimingMode::kButterfly;
  ExpectAllEvalPathsAgree(workloads::BubbleSort(9), cfg);
  ExpectAllEvalPathsAgree(workloads::DotProduct(40), cfg);
}

// Configurations that used to route around the packed loops now run
// inside them — fallback-free, still byte-identical, with the fallback
// counter pinned at zero. Fault injection is the interesting one — the
// injected events, self-checking resyncs, and fault squashes must all
// still happen under the word-parallel walk.
TEST(PackedEvalFallbackFree, FaultInjectionRunsPackedUnchanged) {
  const auto program = workloads::DependencyChains(
      {.num_instructions = 400, .ilp = 3});
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 80;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
        fault::FaultPlan::Random(21, 0.05, 300));
    cfg.datapath_eval = DatapathEval::kIncremental;
    const RunResult incr = core::MakeProcessor(kind, cfg)->Run(program);
    cfg.datapath_eval = DatapathEval::kPacked;
    const RunResult packed = core::MakeProcessor(kind, cfg)->Run(program);
    ExpectSameRun(packed, incr);
    // The Ideal core models no delivery hardware to corrupt; only the
    // scalable cores take injections.
    if (kind != ProcessorKind::kIdeal) {
      EXPECT_GT(packed.stats.fault.injected, 0u);
    }
    EXPECT_EQ(packed.stats.fallback_count, 0u);
  }
}

TEST(PackedEvalFallbackFree, StoreForwardingRunsPackedUnchanged) {
  const auto program = workloads::RandomMix(
      {.num_instructions = 400, .load_fraction = 0.3, .store_fraction = 0.25,
       .memory_words = 32, .seed = 3});
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 80;
    cfg.store_forwarding = true;
    cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    cfg.datapath_eval = DatapathEval::kIncremental;
    const RunResult incr = core::MakeProcessor(kind, cfg)->Run(program);
    cfg.datapath_eval = DatapathEval::kPacked;
    const RunResult packed = core::MakeProcessor(kind, cfg)->Run(program);
    ExpectSameRun(packed, incr);
    EXPECT_GT(packed.stats.forwarded_loads, 0u);
    EXPECT_EQ(packed.stats.fallback_count, 0u);
  }
}

// Pipelined register delivery is an Ultrascalar I feature; packed mode
// must model the staged delivery rather than routing around it.
TEST(PackedEvalFallbackFree, PipelinedDatapathRunsPackedUnchanged) {
  const auto program = workloads::DependencyChains(
      {.num_instructions = 400, .ilp = 3});
  CoreConfig cfg;
  cfg.window_size = 80;
  cfg.pipeline_levels_per_stage = 2;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.datapath_eval = DatapathEval::kIncremental;
  const RunResult incr =
      core::MakeProcessor(ProcessorKind::kUltrascalarI, cfg)->Run(program);
  cfg.datapath_eval = DatapathEval::kPacked;
  const RunResult packed =
      core::MakeProcessor(ProcessorKind::kUltrascalarI, cfg)->Run(program);
  ExpectSameRun(packed, incr);
  EXPECT_EQ(packed.stats.fallback_count, 0u);
}

// Checkpoint/restore under packed evaluation: save mid-run, restore, and
// require the resumed run to be indistinguishable from the uninterrupted
// packed run — which itself must match the incremental run.
TEST(PackedEvalCheckpoint, RoundTripsMatchUninterruptedRun) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 60, .block_size = 6, .seed = 9});
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 96;
    cfg.predictor = core::PredictorKind::kTwoBit;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    cfg.datapath_eval = DatapathEval::kIncremental;
    const RunResult incr = core::MakeProcessor(kind, cfg)->Run(program);
    cfg.datapath_eval = DatapathEval::kPacked;
    const auto proc = core::MakeProcessor(kind, cfg);
    const RunResult packed = proc->Run(program);
    ExpectSameRun(packed, incr);
    ASSERT_TRUE(packed.halted);
    ASSERT_GT(packed.cycles, 2u);
    for (const std::uint64_t cycle :
         {std::uint64_t{1}, packed.cycles / 2, packed.cycles - 1}) {
      SCOPED_TRACE("checkpoint at cycle " + std::to_string(cycle));
      const persist::Checkpoint ckpt = proc->SaveCheckpoint(program, cycle);
      const RunResult resumed = proc->RestoreCheckpoint(program, ckpt);
      ExpectSameRun(resumed, packed);
    }
  }
}

// The hard case for fallback-free packed mode: a checkpoint taken while a
// fault plan has corruption live in the delivery buffers must restore into
// the packed loop and reproduce the faulted trajectory (divergences,
// resyncs, squashes) cycle for cycle — with zero fallbacks.
TEST(PackedEvalCheckpoint, RoundTripsUnderLiveFaultPlan) {
  const auto program = workloads::RandomMix({.num_instructions = 512});
  for (const auto kind : kAllKinds) {
    if (kind == ProcessorKind::kIdeal) continue;  // No fault injection.
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 16;
    cfg.cluster_size = 4;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    cfg.datapath_eval = DatapathEval::kPacked;
    cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
        fault::FaultPlan::Random(7, 0.02, 50'000));
    const auto proc = core::MakeProcessor(kind, cfg);
    const RunResult packed = proc->Run(program);
    ASSERT_TRUE(packed.halted);
    EXPECT_GT(packed.stats.fault.injected, 0u);
    EXPECT_EQ(packed.stats.fallback_count, 0u);
    for (const std::uint64_t cycle : {packed.cycles / 4, packed.cycles / 2,
                                      (3 * packed.cycles) / 4}) {
      if (cycle == 0 || cycle >= packed.cycles) continue;
      SCOPED_TRACE("checkpoint at cycle " + std::to_string(cycle));
      const persist::Checkpoint ckpt = proc->SaveCheckpoint(program, cycle);
      const RunResult resumed = proc->RestoreCheckpoint(program, ckpt);
      ExpectSameRun(resumed, packed);
      EXPECT_EQ(resumed.stats.fallback_count, 0u);
    }
  }
}

// --- Ensemble batching ------------------------------------------------------

TEST(EnsembleSchedule, GroupsByProgramContentAndElectsLockstepLeaders) {
  const auto prog_a = std::make_shared<isa::Program>(
      workloads::DependencyChains({.num_instructions = 100, .ilp = 2}));
  // Structurally identical to prog_a but a distinct object: must share a
  // group (content keying, like the functional-sim cache).
  const auto prog_a_clone = std::make_shared<isa::Program>(
      workloads::DependencyChains({.num_instructions = 100, .ilp = 2}));
  const auto prog_b = std::make_shared<isa::Program>(
      workloads::RandomMix({.num_instructions = 80, .seed = 2}));

  std::vector<runtime::SweepPoint> points(5);
  points[0].program = prog_a;
  points[1].program = prog_b;
  points[2].program = prog_a_clone;  // Same content as 0 -> same group.
  points[2].config.window_size = points[0].config.window_size;
  points[3].program = prog_a;
  points[3].config.num_regs = points[0].config.num_regs + 8;  // New group.
  points[4].program = prog_b;
  points[4].kind = ProcessorKind::kHybrid;  // Same group, not a follower.

  const auto groups = runtime::GroupByProgram(points);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].members, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1].members, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(groups[2].members, (std::vector<std::size_t>{3}));

  const auto schedule =
      runtime::BuildEnsembleSchedule(points, /*check_architectural_state=*/false);
  // Point 2 is interchangeable with point 0 (identical kind and config,
  // same program content): it follows 0. Everyone else leads themselves.
  EXPECT_EQ(schedule.leader[0], 0u);
  EXPECT_EQ(schedule.leader[1], 1u);
  EXPECT_EQ(schedule.leader[2], 0u);
  EXPECT_EQ(schedule.leader[3], 3u);
  EXPECT_EQ(schedule.leader[4], 4u);
  EXPECT_EQ(schedule.run_order,
            (std::vector<std::size_t>{0, 1, 4, 3}));  // Groups adjacent.
  // No oracle consumer -> nothing to warm.
  EXPECT_TRUE(schedule.warm_groups.empty());

  const auto warmed =
      runtime::BuildEnsembleSchedule(points, /*check_architectural_state=*/true);
  ASSERT_EQ(warmed.warm_groups.size(), 3u);
}

TEST(EnsembleSchedule, DifferentConfigsNeverFollow) {
  const auto prog = std::make_shared<isa::Program>(
      workloads::DependencyChains({.num_instructions = 100, .ilp = 2}));
  std::vector<runtime::SweepPoint> points(2);
  points[0].program = prog;
  points[1].program = prog;
  points[1].config.window_size = points[0].config.window_size * 2;
  const auto schedule = runtime::BuildEnsembleSchedule(points, false);
  EXPECT_EQ(schedule.leader[1], 1u);
  EXPECT_EQ(schedule.run_order.size(), 2u);
}

/// A sweep mixing repeated (interchangeable) points, distinct configs, and
/// distinct programs must export identical outcomes with batching on and
/// off, at one thread and several.
TEST(EnsembleBatching, SweepOutcomesAreIdenticalBatchedAndUnbatched) {
  const auto prog_a = std::make_shared<isa::Program>(
      workloads::DependencyChains({.num_instructions = 300, .ilp = 3}));
  const auto prog_b = std::make_shared<isa::Program>(workloads::RandomMix(
      {.num_instructions = 250, .load_fraction = 0.25, .store_fraction = 0.15,
       .memory_words = 32, .seed = 17}));

  std::vector<runtime::SweepPoint> points;
  for (const auto kind : kAllKinds) {
    for (const auto& prog : {prog_a, prog_b}) {
      for (int repeat = 0; repeat < 2; ++repeat) {  // Lockstep followers.
        runtime::SweepPoint p;
        p.kind = kind;
        p.config.window_size = 48;
        p.config.mem.mode = memory::MemTimingMode::kMagic;
        p.program = prog;
        p.workload = std::string("w") + std::to_string(points.size());
        points.push_back(std::move(p));
      }
      runtime::SweepPoint odd;  // A distinct config: must really run.
      odd.kind = kind;
      odd.config.window_size = 72;
      odd.config.mem.mode = memory::MemTimingMode::kMagic;
      odd.program = prog;
      odd.workload = std::string("w") + std::to_string(points.size());
      points.push_back(std::move(odd));
    }
  }

  const auto run = [&](bool batching, int threads) {
    runtime::SweepOptions options;
    options.num_threads = threads;
    options.check_architectural_state = true;
    options.collect_metrics = true;
    options.ensemble_batching = batching;
    return runtime::SweepRunner(options).RunWithReport(points);
  };
  const auto baseline = run(false, 1);
  for (const auto& o : baseline.outcomes) {
    ASSERT_TRUE(o.ok) << o.index << ": " << o.error;
  }
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const auto batched = run(true, threads);
    ASSERT_EQ(batched.outcomes.size(), baseline.outcomes.size());
    for (std::size_t i = 0; i < baseline.outcomes.size(); ++i) {
      SCOPED_TRACE(i);
      const auto& a = baseline.outcomes[i];
      const auto& b = batched.outcomes[i];
      ASSERT_TRUE(b.ok) << b.error;
      ASSERT_EQ(b.index, a.index);
      ASSERT_EQ(b.kind, a.kind);
      ASSERT_EQ(b.workload, a.workload);
      ExpectSameRun(b.result, a.result);
      ASSERT_EQ(b.metrics.metrics, a.metrics.metrics);
    }
    const auto* followers =
        batched.runner_metrics.Find("sweep.ensemble_followers");
    ASSERT_NE(followers, nullptr);
    // One leader per (kind, program) pair of the repeated block: the other
    // repeat follows.
    EXPECT_EQ(followers->value, 8u);
  }
}

TEST(EnsembleBatching, FollowersAdoptFailuresOnlyFromDeterministicLeaders) {
  // A leader that fails deterministically (null program) must not be
  // copied onto followers -- null programs are never grouped, so both
  // points fail on their own and report their own error.
  std::vector<runtime::SweepPoint> points(2);
  points[0].workload = "null-a";
  points[1].workload = "null-b";
  runtime::SweepOptions options;
  options.num_threads = 1;
  const auto outcomes = runtime::SweepRunner(options).Run(points);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[0].error, outcomes[1].error);
}

}  // namespace
}  // namespace ultra
