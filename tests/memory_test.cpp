// Tests for the memory substrate: backing store, interleaved cache,
// fat-tree network, bandwidth profiles, branch predictors, trace cache, and
// the MemorySystem facade in all three timing modes.
#include <gtest/gtest.h>

#include <random>

#include "memory/memory.hpp"

namespace ultra::memory {
namespace {

// --- Backing store -------------------------------------------------------------

TEST(BackingStore, ReadsZeroWhenUnwritten) {
  BackingStore store;
  EXPECT_EQ(store.ReadWord(0), 0u);
  EXPECT_EQ(store.ReadWord(1234), 0u);
}

TEST(BackingStore, RoundTripsAndAligns) {
  BackingStore store;
  store.WriteWord(100, 7);
  EXPECT_EQ(store.ReadWord(100), 7u);
  EXPECT_EQ(store.ReadWord(101), 7u);  // Same aligned word.
  EXPECT_EQ(store.ReadWord(103), 7u);
  EXPECT_EQ(store.ReadWord(104), 0u);
  store.WriteWord(102, 9);  // Aligns down to 100.
  EXPECT_EQ(store.ReadWord(100), 9u);
}

TEST(BackingStore, LoadReplacesContents) {
  BackingStore store;
  store.WriteWord(0, 1);
  store.Load({{4, 2}});
  EXPECT_EQ(store.ReadWord(0), 0u);
  EXPECT_EQ(store.ReadWord(4), 2u);
}

// --- Interleaved cache -----------------------------------------------------------

TEST(Cache, ConsecutiveLinesMapToDifferentBanks) {
  BackingStore store;
  CacheConfig cfg;
  cfg.num_banks = 8;
  cfg.line_bytes = 16;
  InterleavedCache cache(cfg, &store);
  for (int line = 0; line < 8; ++line) {
    EXPECT_EQ(cache.BankOf(static_cast<isa::Word>(line * 16)), line);
  }
  EXPECT_EQ(cache.BankOf(8 * 16), 0);  // Wraps.
}

TEST(Cache, MissThenHit) {
  BackingStore store;
  CacheConfig cfg;
  cfg.hit_latency = 1;
  cfg.miss_penalty = 10;
  InterleavedCache cache(cfg, &store);
  cache.NewCycle();
  EXPECT_EQ(cache.Access(64, false), 11);  // Cold miss.
  cache.NewCycle();
  EXPECT_EQ(cache.Access(64, false), 1);   // Hit.
  cache.NewCycle();
  EXPECT_EQ(cache.Access(68, false), 1);   // Same line.
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, BankConflictWithinACycle) {
  BackingStore store;
  CacheConfig cfg;
  cfg.num_banks = 4;
  cfg.line_bytes = 16;
  cfg.ports_per_bank = 1;
  InterleavedCache cache(cfg, &store);
  cache.NewCycle();
  EXPECT_GT(cache.Access(0, false), 0);
  // Same bank (same line) again in the same cycle: conflict.
  EXPECT_EQ(cache.Access(4, false), -1);
  // A different bank still has ports.
  EXPECT_GT(cache.Access(16, false), 0);
  cache.NewCycle();
  EXPECT_GT(cache.Access(4, false), 0);  // Retried next cycle.
  EXPECT_EQ(cache.stats().bank_conflicts, 1u);
}

TEST(Cache, LruEvictionWithinSet) {
  BackingStore store;
  CacheConfig cfg;
  cfg.num_banks = 1;
  cfg.sets_per_bank = 1;
  cfg.ways = 2;
  cfg.line_bytes = 16;
  cfg.ports_per_bank = 8;
  InterleavedCache cache(cfg, &store);
  cache.NewCycle();
  cache.Access(0 * 16, false);   // Miss, fills way 0.
  cache.Access(1 * 16, false);   // Miss, fills way 1.
  cache.Access(0 * 16, false);   // Hit: 0 is now MRU.
  cache.Access(2 * 16, false);   // Evicts line 1 (LRU).
  cache.NewCycle();
  EXPECT_EQ(cache.Access(0 * 16, false), cfg.hit_latency);
  EXPECT_EQ(cache.Access(1 * 16, false),
            cfg.hit_latency + cfg.miss_penalty);  // Was evicted.
}

TEST(Cache, FlushDropsEverything) {
  BackingStore store;
  InterleavedCache cache(CacheConfig{}, &store);
  cache.NewCycle();
  cache.Access(0, false);
  cache.Flush();
  cache.NewCycle();
  EXPECT_GT(cache.Access(0, false), CacheConfig{}.hit_latency);
}

// --- Bandwidth profiles -----------------------------------------------------------

TEST(Bandwidth, RegimeShapes) {
  const double n = 4096;
  EXPECT_NEAR(BandwidthProfile::ForRegime(BandwidthRegime::kConstant)(n),
              1.0, 1e-9);
  EXPECT_NEAR(BandwidthProfile::ForRegime(BandwidthRegime::kSqrt)(n), 64.0,
              1e-9);
  EXPECT_NEAR(BandwidthProfile::ForRegime(BandwidthRegime::kLinear)(n),
              4096.0, 1e-9);
  EXPECT_LT(BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus)(n),
            64.0);
  EXPECT_GT(BandwidthProfile::ForRegime(BandwidthRegime::kSqrtPlus)(n),
            64.0);
}

// --- Fat tree -----------------------------------------------------------------------

TEST(FatTree, SingleMessageTakesOneCyclePerLevel) {
  FatTreeNetwork net(8, BandwidthProfile::ForRegime(BandwidthRegime::kLinear));
  EXPECT_EQ(net.levels(), 3);
  net.SubmitUp(3, 42);
  int cycles = 0;
  std::vector<std::uint64_t> arrived;
  while (arrived.empty() && cycles < 10) {
    net.Tick();
    ++cycles;
    arrived = net.DrainRoot();
  }
  ASSERT_EQ(arrived.size(), 1u);
  EXPECT_EQ(arrived[0], 42u);
  EXPECT_EQ(cycles, net.levels() + 1);  // One hop per level + memory port.
}

TEST(FatTree, DownDeliveryReachesTheRightLeaf) {
  FatTreeNetwork net(8, BandwidthProfile::ForRegime(BandwidthRegime::kLinear));
  net.SubmitDown(5, 7);
  std::vector<FatTreeNetwork::Delivery> got;
  for (int i = 0; i < 10 && got.empty(); ++i) {
    net.Tick();
    got = net.DrainLeaves();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].leaf, 5);
  EXPECT_EQ(got[0].id, 7u);
}

TEST(FatTree, ThinRootLinkSerializesTraffic) {
  // Constant bandwidth: the root link carries 1 message per cycle, so 8
  // simultaneous messages take ~8 extra cycles to drain.
  FatTreeNetwork thin(8,
                      BandwidthProfile::ForRegime(BandwidthRegime::kConstant));
  FatTreeNetwork fat(8, BandwidthProfile::ForRegime(BandwidthRegime::kLinear));
  for (int leaf = 0; leaf < 8; ++leaf) {
    thin.SubmitUp(leaf, static_cast<std::uint64_t>(leaf));
    fat.SubmitUp(leaf, static_cast<std::uint64_t>(leaf));
  }
  const auto drain = [](FatTreeNetwork& net) {
    int cycles = 0;
    std::size_t total = 0;
    while (total < 8 && cycles < 100) {
      net.Tick();
      ++cycles;
      total += net.DrainRoot().size();
    }
    return cycles;
  };
  const int thin_cycles = drain(thin);
  const int fat_cycles = drain(fat);
  EXPECT_EQ(fat_cycles, 4);
  EXPECT_GE(thin_cycles, 8);
}

TEST(FatTree, LinkCapacityFollowsTheProfile) {
  FatTreeNetwork net(64, BandwidthProfile::ForRegime(BandwidthRegime::kSqrt));
  EXPECT_EQ(net.LinkCapacity(64), 8);
  EXPECT_EQ(net.LinkCapacity(16), 4);
  EXPECT_EQ(net.LinkCapacity(4), 2);
  EXPECT_EQ(net.LinkCapacity(1), 1);
}

// --- Branch predictors -----------------------------------------------------------

TEST(Predictors, NotTakenPredictsJumpsTaken) {
  NotTakenPredictor p;
  EXPECT_FALSE(p.PredictTaken(0, isa::MakeBranch(isa::Opcode::kBeq, 0, 0, 5)));
  EXPECT_TRUE(p.PredictTaken(0, isa::MakeJmp(3)));
}

TEST(Predictors, BtfnPredictsBackwardTaken) {
  BtfnPredictor p;
  EXPECT_TRUE(p.PredictTaken(10, isa::MakeBranch(isa::Opcode::kBne, 0, 0, 3)));
  EXPECT_FALSE(
      p.PredictTaken(10, isa::MakeBranch(isa::Opcode::kBne, 0, 0, 20)));
}

TEST(Predictors, TwoBitSaturates) {
  TwoBitPredictor p(16);
  const auto br = isa::MakeBranch(isa::Opcode::kBeq, 0, 0, 5);
  EXPECT_FALSE(p.PredictTaken(3, br));  // Initial state: weakly not-taken.
  p.Update(3, true);
  EXPECT_TRUE(p.PredictTaken(3, br));
  p.Update(3, true);
  p.Update(3, true);
  p.Update(3, false);  // One not-taken does not flip a saturated counter.
  EXPECT_TRUE(p.PredictTaken(3, br));
  p.Update(3, false);
  p.Update(3, false);
  EXPECT_FALSE(p.PredictTaken(3, br));
}

TEST(Predictors, OracleReplaysPerPcSequences) {
  std::vector<std::vector<std::uint8_t>> outcomes(4);
  outcomes[2] = {1, 0, 1};
  OraclePredictor p(outcomes);
  const auto br = isa::MakeBranch(isa::Opcode::kBlt, 0, 0, 0);
  EXPECT_TRUE(p.PredictTaken(2, br));
  EXPECT_FALSE(p.PredictTaken(2, br));
  EXPECT_TRUE(p.PredictTaken(2, br));
  EXPECT_FALSE(p.PredictTaken(2, br));  // Exhausted: default not-taken.
}

TEST(Predictors, CloneResetsDynamicState) {
  std::vector<std::vector<std::uint8_t>> outcomes(1);
  outcomes[0] = {1};
  OraclePredictor p(outcomes);
  const auto br = isa::MakeBranch(isa::Opcode::kBlt, 0, 0, 0);
  EXPECT_TRUE(p.PredictTaken(0, br));
  auto clone = p.Clone();
  EXPECT_TRUE(clone->PredictTaken(0, br));  // Fresh index.
}

// --- Trace cache -------------------------------------------------------------------

TEST(TraceCache, MissThenHit) {
  TraceCache tc(4, 3, 16);
  EXPECT_EQ(tc.Lookup(10, 0b101), nullptr);
  tc.Install(10, 0b101, {10, 11, 12});
  const auto* trace = tc.Lookup(10, 0b101);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->size(), 3u);
  EXPECT_EQ(tc.Lookup(10, 0b100), nullptr);  // Different outcome vector.
  EXPECT_EQ(tc.stats().hits, 1u);
  EXPECT_EQ(tc.stats().misses, 2u);
}

TEST(TraceCache, LruEviction) {
  TraceCache tc(2, 3, 16);
  tc.Install(1, 0, {1});
  tc.Install(2, 0, {2});
  ASSERT_NE(tc.Lookup(1, 0), nullptr);  // Touch 1: 2 becomes LRU.
  tc.Install(3, 0, {3});                // Evicts 2.
  EXPECT_NE(tc.Lookup(1, 0), nullptr);
  EXPECT_EQ(tc.Lookup(2, 0), nullptr);
  EXPECT_NE(tc.Lookup(3, 0), nullptr);
}

// --- MemorySystem facade -------------------------------------------------------------

TEST(MemorySystem, MagicModeFixedLatency) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kMagic;
  cfg.magic_load_latency = 3;
  MemorySystem mem(cfg, 8);
  mem.Reset({{100, 55}});
  const auto id = mem.SubmitLoad(0, 100);
  std::vector<MemResponse> got;
  int cycles = 0;
  while (got.empty() && cycles < 10) {
    mem.Tick();
    ++cycles;
    got = mem.DrainCompleted();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, id);
  EXPECT_EQ(got[0].value, 55u);
  EXPECT_EQ(cycles, 3);
}

TEST(MemorySystem, StoreIsArchitecturallyImmediate) {
  MemoryConfig cfg;
  MemorySystem mem(cfg, 8);
  mem.Reset({});
  mem.SubmitStore(0, 64, 9);
  EXPECT_EQ(mem.ReadWord(64), 9u);  // Visible before the timing completes.
}

TEST(MemorySystem, BandwidthLimitThrottlesCompletionRate) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kBandwidthLimited;
  cfg.regime = BandwidthRegime::kConstant;  // 1 op/cycle.
  cfg.cache.num_banks = 16;
  MemorySystem mem(cfg, 16);
  mem.Reset({});
  for (int i = 0; i < 8; ++i) {
    mem.SubmitLoad(i, static_cast<isa::Word>(i * 64));
  }
  int cycles = 0;
  std::size_t done = 0;
  while (done < 8 && cycles < 100) {
    mem.Tick();
    ++cycles;
    done += mem.DrainCompleted().size();
  }
  EXPECT_GE(cycles, 8);  // At most one admission per cycle.
}

TEST(MemorySystem, LinearBandwidthCompletesInParallel) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kBandwidthLimited;
  cfg.regime = BandwidthRegime::kLinear;
  cfg.cache.num_banks = 16;
  MemorySystem mem(cfg, 16);
  mem.Reset({});
  for (int i = 0; i < 8; ++i) {
    mem.SubmitLoad(i, static_cast<isa::Word>(i * 64));
  }
  int cycles = 0;
  std::size_t done = 0;
  while (done < 8 && cycles < 100) {
    mem.Tick();
    ++cycles;
    done += mem.DrainCompleted().size();
  }
  EXPECT_LE(cycles, 15);  // All admitted the same cycle; only misses serialize.
}

TEST(MemorySystem, FatTreeModeDeliversCorrectValues) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kFatTree;
  cfg.regime = BandwidthRegime::kSqrt;
  MemorySystem mem(cfg, 16);
  mem.Reset({{8, 123}});
  const auto id = mem.SubmitLoad(3, 8);
  std::vector<MemResponse> got;
  for (int i = 0; i < 50 && got.empty(); ++i) {
    mem.Tick();
    got = mem.DrainCompleted();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, id);
  EXPECT_EQ(got[0].value, 123u);
}

TEST(MemorySystem, FatTreeRoundTripCostsAtLeastTwoTreeDepths) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kFatTree;
  cfg.regime = BandwidthRegime::kLinear;
  MemorySystem mem(cfg, 64);  // 6 levels.
  mem.Reset({});
  mem.SubmitLoad(0, 0);
  int cycles = 0;
  while (mem.DrainCompleted().empty() && cycles < 60) {
    mem.Tick();
    ++cycles;
  }
  EXPECT_GE(cycles, 2 * 6);
}

TEST(MemorySystem, ManyRandomOpsAreAllCompletedExactlyOnce) {
  for (const auto mode :
       {MemTimingMode::kMagic, MemTimingMode::kBandwidthLimited,
        MemTimingMode::kFatTree}) {
    MemoryConfig cfg;
    cfg.mode = mode;
    cfg.regime = BandwidthRegime::kSqrt;
    MemorySystem mem(cfg, 16);
    mem.Reset({});
    std::mt19937 rng(5);
    std::set<std::uint64_t> outstanding;
    for (int i = 0; i < 200; ++i) {
      const auto addr = static_cast<isa::Word>((rng() % 256) * 4);
      if (rng() % 2) {
        outstanding.insert(mem.SubmitLoad(static_cast<int>(rng() % 16), addr));
      } else {
        outstanding.insert(
            mem.SubmitStore(static_cast<int>(rng() % 16), addr, rng()));
      }
    }
    int cycles = 0;
    while (!outstanding.empty() && cycles < 10000) {
      mem.Tick();
      ++cycles;
      for (const auto& resp : mem.DrainCompleted()) {
        ASSERT_EQ(outstanding.erase(resp.id), 1u)
            << "duplicate or unknown completion";
      }
    }
    EXPECT_TRUE(outstanding.empty()) << "mode " << static_cast<int>(mode);
  }
}

// --- Distributed per-cluster caches (Section 7) ------------------------------

TEST(ClusterCache, SecondLoadFromSameClusterHitsLocally) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kBandwidthLimited;
  cfg.regime = BandwidthRegime::kConstant;
  cfg.cluster_cache_leaves = 4;
  MemorySystem mem(cfg, 16);
  mem.Reset({{64, 9}});
  const auto drain_one = [&](std::uint64_t id) {
    for (int i = 0; i < 100; ++i) {
      mem.Tick();
      for (const auto& r : mem.DrainCompleted()) {
        if (r.id == id) return r;
      }
    }
    ADD_FAILURE() << "request never completed";
    return MemResponse{};
  };
  const auto first = drain_one(mem.SubmitLoad(1, 64));
  EXPECT_EQ(first.value, 9u);
  EXPECT_EQ(mem.cluster_cache_stats().local_hits, 0u);
  const auto second = drain_one(mem.SubmitLoad(2, 64));  // Same cluster.
  EXPECT_EQ(second.value, 9u);
  EXPECT_EQ(mem.cluster_cache_stats().local_hits, 1u);
  // A different cluster misses its own local cache.
  drain_one(mem.SubmitLoad(9, 64));
  EXPECT_EQ(mem.cluster_cache_stats().local_hits, 1u);
}

TEST(ClusterCache, StoreInvalidatesEveryLocalCopy) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kBandwidthLimited;
  cfg.cluster_cache_leaves = 4;
  MemorySystem mem(cfg, 8);
  mem.Reset({{32, 1}});
  const auto run = [&] {
    for (int i = 0; i < 50; ++i) mem.Tick();
    mem.DrainCompleted();
  };
  mem.SubmitLoad(0, 32);  // Fills cluster 0's cache.
  mem.SubmitLoad(5, 32);  // Fills cluster 1's cache.
  run();
  mem.SubmitStore(0, 32, 2);
  run();
  EXPECT_EQ(mem.cluster_cache_stats().invalidations, 2u);
  // The reload sees the new value (from memory, not a stale copy).
  const auto id = mem.SubmitLoad(5, 32);
  isa::Word got = 0;
  for (int i = 0; i < 50; ++i) {
    mem.Tick();
    for (const auto& r : mem.DrainCompleted()) {
      if (r.id == id) got = r.value;
    }
  }
  EXPECT_EQ(got, 2u);
}

TEST(ClusterCache, LruEvictionBoundsTheFootprint) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kMagic;
  cfg.cluster_cache_leaves = 8;
  cfg.cluster_cache_words = 2;
  MemorySystem mem(cfg, 8);
  mem.Reset({});
  const auto run = [&] {
    for (int i = 0; i < 10; ++i) mem.Tick();
    mem.DrainCompleted();
  };
  mem.SubmitLoad(0, 0);
  mem.SubmitLoad(0, 4);
  mem.SubmitLoad(0, 8);  // Evicts address 0.
  run();
  mem.SubmitLoad(0, 0);
  run();
  EXPECT_EQ(mem.cluster_cache_stats().local_hits, 0u);
  mem.SubmitLoad(0, 8);  // Still resident.
  run();
  EXPECT_EQ(mem.cluster_cache_stats().local_hits, 1u);
}

TEST(ClusterCache, CoresStayCorrectWithDistributedCaches) {
  // Full-system check lives in core tests; here a store/load interleaving
  // through the facade must match the backing store at every step.
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kBandwidthLimited;
  cfg.regime = BandwidthRegime::kSqrt;
  cfg.cluster_cache_leaves = 4;
  MemorySystem mem(cfg, 16);
  mem.Reset({});
  std::mt19937 rng(3);
  for (int step = 0; step < 300; ++step) {
    const auto addr = static_cast<isa::Word>((rng() % 16) * 4);
    if (rng() % 2) {
      mem.SubmitStore(static_cast<int>(rng() % 16), addr, rng() % 1000);
      for (int i = 0; i < 30; ++i) mem.Tick();
      mem.DrainCompleted();
    } else {
      const auto id = mem.SubmitLoad(static_cast<int>(rng() % 16), addr);
      const isa::Word expected = mem.ReadWord(addr);
      bool done = false;
      for (int i = 0; i < 60 && !done; ++i) {
        mem.Tick();
        for (const auto& r : mem.DrainCompleted()) {
          if (r.id == id) {
            ASSERT_EQ(r.value, expected) << "addr " << addr;
            done = true;
          }
        }
      }
      ASSERT_TRUE(done);
    }
  }
}

// --- Multi-level hierarchy (PR 9) -----------------------------------------

CacheLevelConfig SmallLevel() {
  CacheLevelConfig cfg;
  cfg.enabled = true;
  cfg.sets = 2;
  cfg.ways = 2;
  cfg.block_bytes = 16;
  cfg.hit_latency = 1;
  cfg.miss_latency = 8;
  return cfg;
}

TEST(CacheLevel, MissThenHitWithinABlock) {
  CacheLevelModel level(SmallLevel());
  EXPECT_FALSE(level.Lookup(0, false).hit);
  level.Fill(0, /*dirty=*/false, /*prefetched=*/false);
  EXPECT_TRUE(level.Lookup(0, false).hit);
  EXPECT_TRUE(level.Lookup(12, false).hit);   // Same 16-byte block.
  EXPECT_FALSE(level.Lookup(16, false).hit);  // Next block.
  EXPECT_EQ(level.stats().hits, 2u);
  EXPECT_EQ(level.stats().misses, 2u);
}

TEST(CacheLevel, LruEvictionWithinASet) {
  // 2 sets x 16-byte blocks: addresses 0, 32, 64 share set 0.
  CacheLevelModel level(SmallLevel());
  level.Fill(0, false, false);
  level.Fill(32, false, false);
  level.Lookup(0, false);        // Touch 0: 32 becomes LRU.
  level.Fill(64, false, false);  // Evicts 32.
  EXPECT_TRUE(level.Contains(0));
  EXPECT_FALSE(level.Contains(32));
  EXPECT_TRUE(level.Contains(64));
  EXPECT_EQ(level.stats().evictions, 1u);
}

TEST(CacheLevel, DirtyVictimCountsAsWriteback) {
  CacheLevelModel level(SmallLevel());
  level.Fill(0, /*dirty=*/false, false);
  level.Lookup(0, /*is_store=*/true);  // Write-back: hit marks dirty.
  level.Fill(32, false, false);
  level.Lookup(32, false);                             // 0 is now LRU.
  EXPECT_TRUE(level.Fill(64, false, false));           // Dirty victim.
  EXPECT_EQ(level.stats().writebacks, 1u);
  EXPECT_FALSE(level.Fill(32 + 128, false, false));    // Clean victim (32).
}

TEST(CacheLevel, ContainsHasNoSideEffects) {
  CacheLevelModel level(SmallLevel());
  level.Fill(0, false, false);
  const auto before = level.stats();
  EXPECT_TRUE(level.Contains(0));
  EXPECT_FALSE(level.Contains(16));
  EXPECT_EQ(level.stats().hits, before.hits);
  EXPECT_EQ(level.stats().misses, before.misses);
}

TEST(CacheLevel, PrefetchedLinesAreCountedOnFirstHitOnly) {
  CacheLevelModel level(SmallLevel());
  level.Fill(0, false, /*prefetched=*/true);
  EXPECT_EQ(level.stats().prefetch_fills, 1u);
  EXPECT_TRUE(level.Lookup(0, false).was_prefetched);
  EXPECT_FALSE(level.Lookup(0, false).was_prefetched);  // Bit cleared.
  EXPECT_EQ(level.stats().prefetch_hits, 1u);
}

TEST(CacheLevel, StateRoundTripsThroughCheckpoint) {
  CacheLevelModel level(SmallLevel());
  level.Fill(0, true, false);
  level.Fill(32, false, true);
  level.Lookup(0, false);
  persist::Encoder e;
  level.SaveState(e);
  CacheLevelModel restored(SmallLevel());
  persist::Decoder d(e.bytes());
  restored.RestoreState(d);
  EXPECT_TRUE(restored.Contains(0));
  EXPECT_TRUE(restored.Contains(32));
  EXPECT_EQ(restored.stats().hits, level.stats().hits);
  EXPECT_EQ(restored.stats().prefetch_fills, 1u);
}

TEST(StridePrefetch, TrainsOnConstantStrideOnly) {
  StridePrefetcher pf({.depth = 2, .table_entries = 4});
  std::vector<isa::Word> out;
  pf.ObserveMiss(0, 32, out);    // Allocate.
  EXPECT_TRUE(out.empty());
  pf.ObserveMiss(32, 32, out);   // Stride learned, confidence 1.
  EXPECT_TRUE(out.empty());
  pf.ObserveMiss(64, 32, out);   // Confidence 2: emit.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 96u);
  EXPECT_EQ(out[1], 128u);
  out.clear();
  pf.ObserveMiss(70000, 32, out);  // Different 4 KiB region: fresh entry.
  EXPECT_TRUE(out.empty());
}

TEST(StridePrefetch, StrideChangeResetsConfidence) {
  StridePrefetcher pf({.depth = 2, .table_entries = 4});
  std::vector<isa::Word> out;
  pf.ObserveMiss(0, 32, out);
  pf.ObserveMiss(32, 32, out);
  pf.ObserveMiss(64, 32, out);
  ASSERT_FALSE(out.empty());
  out.clear();
  pf.ObserveMiss(256, 32, out);  // Stride break.
  EXPECT_TRUE(out.empty());
  pf.ObserveMiss(512, 32, out);  // New stride, confidence 1 again.
  EXPECT_TRUE(out.empty());
}

MemoryConfig HierarchyConfig1Level() {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kMagic;
  cfg.magic_load_latency = 20;
  cfg.hierarchy.l1d.enabled = true;
  cfg.hierarchy.l1d.sets = 4;
  cfg.hierarchy.l1d.ways = 2;
  cfg.hierarchy.l1d.block_bytes = 16;
  cfg.hierarchy.l1d.hit_latency = 2;
  cfg.hierarchy.l1d.miss_latency = 5;
  return cfg;
}

int CyclesToComplete(MemorySystem& mem, std::uint64_t id) {
  for (int cycles = 1; cycles <= 200; ++cycles) {
    mem.Tick();
    for (const auto& r : mem.DrainCompleted()) {
      if (r.id == id) return cycles;
    }
  }
  return -1;
}

TEST(MemHierarchy, L1HitIsFastAndBypassesBacking) {
  MemorySystem mem(HierarchyConfig1Level(), 4);
  mem.Reset({{64, 7}});
  // Cold miss: L1 lookup (2) + miss penalty (5) + magic backing (20).
  EXPECT_EQ(CyclesToComplete(mem, mem.SubmitLoad(0, 64)), 27);
  // Warm hit: the L1 lookup alone.
  const auto id = mem.SubmitLoad(0, 64);
  EXPECT_EQ(CyclesToComplete(mem, id), 2);
  ASSERT_NE(mem.l1d_stats(), nullptr);
  EXPECT_EQ(mem.l1d_stats()->hits, 1u);
  EXPECT_EQ(mem.l1d_stats()->misses, 1u);
}

TEST(MemHierarchy, StoreStaysArchitecturallyImmediate) {
  MemorySystem mem(HierarchyConfig1Level(), 4);
  mem.Reset({});
  mem.SubmitStore(0, 64, 9);
  EXPECT_EQ(mem.ReadWord(64), 9u);  // Before any timing completes.
}

TEST(MemHierarchy, DirtyEvictionChargesAWriteback) {
  auto cfg = HierarchyConfig1Level();
  cfg.hierarchy.l1d.sets = 1;
  cfg.hierarchy.l1d.ways = 1;  // Direct-mapped single line.
  cfg.magic_store_latency = 1;
  MemorySystem mem(cfg, 4);
  mem.Reset({});
  // Dirty the only line, then miss to a conflicting block: the victim
  // write-back adds another miss_latency before the backing trip.
  EXPECT_EQ(CyclesToComplete(mem, mem.SubmitStore(0, 0, 1)), 8);  // 2+5+1.
  EXPECT_EQ(CyclesToComplete(mem, mem.SubmitLoad(0, 16)), 32);
  EXPECT_EQ(mem.l1d_stats()->writebacks, 1u);
}

TEST(MemHierarchy, L2HitFillsL1AndSkipsBacking) {
  auto cfg = HierarchyConfig1Level();
  cfg.hierarchy.l2.enabled = true;
  cfg.hierarchy.l2.sets = 8;
  cfg.hierarchy.l2.ways = 4;
  cfg.hierarchy.l2.block_bytes = 16;
  cfg.hierarchy.l2.hit_latency = 4;
  cfg.hierarchy.l2.miss_latency = 10;
  cfg.hierarchy.l1d.sets = 1;
  cfg.hierarchy.l1d.ways = 1;
  MemorySystem mem(cfg, 4);
  mem.Reset({});
  // Cold: 2 + 5 + 4 + 10 + 20. Fills both levels.
  EXPECT_EQ(CyclesToComplete(mem, mem.SubmitLoad(0, 0)), 41);
  // Conflict evicts 0 from the one-line L1 but not from L2.
  EXPECT_EQ(CyclesToComplete(mem, mem.SubmitLoad(0, 16)), 41);
  // L1 miss, L2 hit: 2 + 5 + 4, no backing trip.
  EXPECT_EQ(CyclesToComplete(mem, mem.SubmitLoad(0, 0)), 11);
  ASSERT_NE(mem.l2_stats(), nullptr);
  EXPECT_EQ(mem.l2_stats()->hits, 1u);
}

TEST(MemHierarchy, PrefetchFillTurnsTheNextMissIntoAHit) {
  auto cfg = HierarchyConfig1Level();
  cfg.hierarchy.prefetch.depth = 2;
  cfg.hierarchy.prefetch.fill_latency = 3;
  MemorySystem mem(cfg, 4);
  mem.Reset({});
  // Two constant-stride misses train the detector; the third emits
  // prefetches for blocks 48 and 64.
  CyclesToComplete(mem, mem.SubmitLoad(0, 0));
  CyclesToComplete(mem, mem.SubmitLoad(0, 16));
  CyclesToComplete(mem, mem.SubmitLoad(0, 32));
  EXPECT_EQ(mem.prefetch_issued(), 2u);
  // The fills landed during the 27-cycle demand miss above.
  const auto id = mem.SubmitLoad(0, 48);
  EXPECT_EQ(CyclesToComplete(mem, id), 2);  // Hit latency only.
  EXPECT_GE(mem.l1d_stats()->prefetch_fills, 1u);
  EXPECT_EQ(mem.l1d_stats()->prefetch_hits, 1u);
}

TEST(MemHierarchy, HierarchyValuesMatchBackingUnderRandomTraffic) {
  auto cfg = HierarchyConfig1Level();
  cfg.hierarchy.l2.enabled = true;
  cfg.hierarchy.l2.sets = 4;
  cfg.hierarchy.l2.ways = 2;
  cfg.hierarchy.l2.block_bytes = 32;
  cfg.hierarchy.prefetch.depth = 2;
  MemorySystem mem(cfg, 8);
  mem.Reset({});
  std::mt19937 rng(7);
  for (int step = 0; step < 300; ++step) {
    const auto addr = static_cast<isa::Word>((rng() % 64) * 4);
    if (rng() % 2) {
      mem.SubmitStore(static_cast<int>(rng() % 8), addr, rng() % 1000);
      for (int i = 0; i < 40; ++i) mem.Tick();
      mem.DrainCompleted();
    } else {
      const auto id = mem.SubmitLoad(static_cast<int>(rng() % 8), addr);
      const isa::Word expected = mem.ReadWord(addr);
      bool done = false;
      for (int i = 0; i < 80 && !done; ++i) {
        mem.Tick();
        for (const auto& r : mem.DrainCompleted()) {
          if (r.id == id) {
            ASSERT_EQ(r.value, expected) << "addr " << addr;
            done = true;
          }
        }
      }
      ASSERT_TRUE(done);
    }
  }
  EXPECT_GT(mem.l1d_stats()->hits + mem.l1d_stats()->misses, 0u);
}

}  // namespace
}  // namespace ultra::memory
