// Tests for the reference ISA: opcode metadata, encoding round-trips, ALU
// semantics, the latency model, and the assembler/disassembler.
#include <gtest/gtest.h>

#include <random>

#include "isa/isa.hpp"

namespace ultra::isa {
namespace {

// --- Opcode metadata ---------------------------------------------------------

TEST(Opcode, EveryOpcodeReadsAtMostTwoAndWritesAtMostOne) {
  // The Ultrascalar II datapath depends on this ISA-wide bound (Figure 7).
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    SCOPED_TRACE(OpcodeName(op));
    const int reads = (ReadsRs1(op) ? 1 : 0) + (ReadsRs2(op) ? 1 : 0);
    EXPECT_LE(reads, 2);
    // WritesRd returns a single bool: at most one destination by design.
  }
}

TEST(Opcode, NamesRoundTrip) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    EXPECT_EQ(OpcodeFromName(OpcodeName(op)), op);
  }
  EXPECT_EQ(OpcodeFromName("bogus"), Opcode::kCount_);
  EXPECT_EQ(OpcodeFromName(""), Opcode::kCount_);
}

TEST(Opcode, ClassPredicatesAreConsistent) {
  EXPECT_TRUE(IsMemory(Opcode::kLoad));
  EXPECT_TRUE(IsMemory(Opcode::kStore));
  EXPECT_FALSE(IsMemory(Opcode::kAdd));
  EXPECT_TRUE(IsConditionalBranch(Opcode::kBeq));
  EXPECT_FALSE(IsConditionalBranch(Opcode::kJmp));
  EXPECT_TRUE(IsControlFlow(Opcode::kJmp));
  EXPECT_TRUE(IsControlFlow(Opcode::kJal));
  EXPECT_FALSE(IsControlFlow(Opcode::kHalt));
}

TEST(Opcode, StoreReadsTwoRegistersWritesNone) {
  EXPECT_TRUE(ReadsRs1(Opcode::kStore));
  EXPECT_TRUE(ReadsRs2(Opcode::kStore));
  EXPECT_FALSE(WritesRd(Opcode::kStore));
}

TEST(Opcode, LoadReadsOneWritesOne) {
  EXPECT_TRUE(ReadsRs1(Opcode::kLoad));
  EXPECT_FALSE(ReadsRs2(Opcode::kLoad));
  EXPECT_TRUE(WritesRd(Opcode::kLoad));
}

// --- Encoding ----------------------------------------------------------------

TEST(Encoding, RoundTripsAllOpcodesWithRandomFields) {
  std::mt19937 rng(99);
  for (int i = 0; i < kNumOpcodes; ++i) {
    for (int trial = 0; trial < 16; ++trial) {
      Instruction inst;
      inst.op = static_cast<Opcode>(i);
      inst.rd = static_cast<RegId>(rng() % kMaxLogicalRegisters);
      inst.rs1 = static_cast<RegId>(rng() % kMaxLogicalRegisters);
      inst.rs2 = static_cast<RegId>(rng() % kMaxLogicalRegisters);
      inst.imm = static_cast<std::int32_t>(rng());
      const auto decoded = Decode(Encode(inst));
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, inst);
    }
  }
}

TEST(Encoding, RejectsBadOpcode) {
  EXPECT_FALSE(Decode(0xff).has_value());
}

TEST(Encoding, RejectsOutOfRangeRegister) {
  Instruction inst = MakeRRR(Opcode::kAdd, 1, 2, 3);
  std::uint64_t word = Encode(inst);
  word |= std::uint64_t{200} << 8;  // rd = 200.
  EXPECT_FALSE(Decode(word).has_value());
}

TEST(Encoding, NegativeImmediateSurvives) {
  const auto inst = MakeRRI(Opcode::kAddi, 1, 2, -12345);
  const auto decoded = Decode(Encode(inst));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, -12345);
}

// --- ALU semantics -----------------------------------------------------------

TEST(Alu, BasicArithmetic) {
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kAdd, 0, 0, 0), 3, 4), 7u);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kSub, 0, 0, 0), 3, 4), 0xffffffffu);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kMul, 0, 0, 0), 6, 7), 42u);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kDiv, 0, 0, 0), 42, 6), 7u);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kRem, 0, 0, 0), 43, 6), 1u);
}

TEST(Alu, SignedDivisionTruncatesTowardZero) {
  const auto div = MakeRRR(Opcode::kDiv, 0, 0, 0);
  EXPECT_EQ(static_cast<SWord>(AluResult(
                div, static_cast<Word>(-7), static_cast<Word>(2))),
            -3);
  EXPECT_EQ(static_cast<SWord>(AluResult(
                div, static_cast<Word>(7), static_cast<Word>(-2))),
            -3);
}

TEST(Alu, DivisionByZeroYieldsAllOnes) {
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kDiv, 0, 0, 0), 5, 0), ~Word{0});
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kRem, 0, 0, 0), 5, 0), 5u);
}

TEST(Alu, IntMinDividedByMinusOneWraps) {
  const Word int_min = 0x80000000u;
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kDiv, 0, 0, 0), int_min,
                      static_cast<Word>(-1)),
            int_min);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kRem, 0, 0, 0), int_min,
                      static_cast<Word>(-1)),
            0u);
}

TEST(Alu, ShiftsMaskTheShiftAmount) {
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kSll, 0, 0, 0), 1, 33), 2u);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kSrl, 0, 0, 0), 0x80000000u, 31),
            1u);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kSra, 0, 0, 0), 0x80000000u, 31),
            0xffffffffu);
}

TEST(Alu, SetLessThanSignedVsUnsigned) {
  const Word minus_one = static_cast<Word>(-1);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kSlt, 0, 0, 0), minus_one, 1), 1u);
  EXPECT_EQ(AluResult(MakeRRR(Opcode::kSltu, 0, 0, 0), minus_one, 1), 0u);
}

TEST(Alu, ImmediateForms) {
  EXPECT_EQ(AluResult(MakeRRI(Opcode::kAddi, 0, 0, -1), 5, 0), 4u);
  EXPECT_EQ(AluResult(MakeRRI(Opcode::kSlli, 0, 0, 4), 3, 0), 48u);
  EXPECT_EQ(AluResult(MakeRRI(Opcode::kLui, 0, 0, 0x1234), 0, 0),
            0x12340000u);
  EXPECT_EQ(AluResult(MakeLi(0, -7), 0, 0), static_cast<Word>(-7));
}

TEST(Alu, BranchPredicates) {
  EXPECT_TRUE(BranchTaken(MakeBranch(Opcode::kBeq, 0, 0, 0), 5, 5));
  EXPECT_FALSE(BranchTaken(MakeBranch(Opcode::kBeq, 0, 0, 0), 5, 6));
  EXPECT_TRUE(BranchTaken(MakeBranch(Opcode::kBne, 0, 0, 0), 5, 6));
  EXPECT_TRUE(BranchTaken(MakeBranch(Opcode::kBlt, 0, 0, 0),
                          static_cast<Word>(-1), 0));
  EXPECT_FALSE(BranchTaken(MakeBranch(Opcode::kBge, 0, 0, 0),
                           static_cast<Word>(-1), 0));
  EXPECT_TRUE(BranchTaken(MakeJmp(7), 0, 0));
}

TEST(Alu, EffectiveAddress) {
  EXPECT_EQ(EffectiveAddress(MakeLoad(1, 2, 8), 100), 108u);
  EXPECT_EQ(EffectiveAddress(MakeLoad(1, 2, -4), 100), 96u);
}

// --- Latency model -----------------------------------------------------------

TEST(Latency, Figure3Defaults) {
  const LatencyModel lat;
  EXPECT_EQ(lat.Cycles(Opcode::kAdd), 1);
  EXPECT_EQ(lat.Cycles(Opcode::kMul), 3);
  EXPECT_EQ(lat.Cycles(Opcode::kDiv), 10);
  EXPECT_EQ(lat.Cycles(Opcode::kRem), 10);
  EXPECT_EQ(lat.Cycles(Opcode::kBeq), 1);
  EXPECT_EQ(lat.Cycles(Opcode::kNop), 1);
}

TEST(Latency, Overridable) {
  LatencyModel lat;
  lat.Set(OpClass::kIntMul, 5);
  EXPECT_EQ(lat.Cycles(Opcode::kMul), 5);
  EXPECT_EQ(lat.Cycles(Opcode::kAdd), 1);
}

// --- Assembler ---------------------------------------------------------------

TEST(Assembler, RoundTripsThroughDisassembler) {
  const char* source = R"(
    li r1, 10
    addi r2, r1, -3
    mul r3, r1, r2
    ld r4, 8(r3)
    st r4, -4(r1)
    beq r1, r2, 0
    jmp 1
    jal r31, 2
    halt
  )";
  const auto program = AssembleOrDie(source);
  ASSERT_EQ(program.size(), 9u);
  // Re-assembling each disassembled line must reproduce the instruction.
  for (const auto& inst : program.code()) {
    const auto again = AssembleOrDie(ToString(inst));
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again.at(0), inst) << ToString(inst);
  }
}

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  const auto program = AssembleOrDie(R"(
    top:
    addi r1, r1, 1
    beq r1, r2, done
    jmp top
    done:
    halt
  )");
  EXPECT_EQ(program.at(1).imm, 3);  // done.
  EXPECT_EQ(program.at(2).imm, 0);  // top.
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const auto program = AssembleOrDie("start: addi r1, r1, 1\n jmp start\n");
  EXPECT_EQ(program.at(1).imm, 0);
  EXPECT_EQ(program.labels().at("start"), 0u);
}

TEST(Assembler, HexAndNegativeImmediates) {
  const auto program = AssembleOrDie("li r1, 0x10\nli r2, -0x10\nhalt\n");
  EXPECT_EQ(program.at(0).imm, 16);
  EXPECT_EQ(program.at(1).imm, -16);
}

TEST(Assembler, WordDirectiveFillsInitialMemory) {
  const auto program = AssembleOrDie(".word 0x10 42\n.word 20 0xff\nhalt\n");
  EXPECT_EQ(program.initial_memory().at(0x10), 42u);
  EXPECT_EQ(program.initial_memory().at(20), 0xffu);
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const auto program = AssembleOrDie(R"(
    # full-line comment

    li r1, 5   # trailing comment
    halt
  )");
  EXPECT_EQ(program.size(), 2u);
}

struct BadSource {
  const char* name;
  const char* source;
};

class AssemblerErrors : public testing::TestWithParam<BadSource> {};

TEST_P(AssemblerErrors, ReportsError) {
  const auto result = Assemble(GetParam().source);
  ASSERT_TRUE(std::holds_alternative<AssemblyError>(result))
      << GetParam().source;
  EXPECT_GT(std::get<AssemblyError>(result).line, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    testing::Values(
        BadSource{"unknown_mnemonic", "frobnicate r1, r2, r3\n"},
        BadSource{"bad_register", "add r1, r99, r3\n"},
        BadSource{"register_out_of_range", "add r64, r0, r0\n"},
        BadSource{"missing_operand", "add r1, r2\n"},
        BadSource{"extra_operand", "halt r1\n"},
        BadSource{"undefined_label", "jmp nowhere\n"},
        BadSource{"bad_immediate", "li r1, banana\n"},
        BadSource{"bad_word_directive", ".word 1\n"},
        BadSource{"empty_label", ": add r1, r2, r3\n"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Assembler, AssembleOrDieThrowsOnError) {
  EXPECT_THROW(AssembleOrDie("bogus\n"), std::runtime_error);
}

TEST(AssemblerDiagnostics, ErrorsCarryLineAndToken) {
  const auto result = Assemble("li r1, 1\nadd r1, banana, r3\nhalt\n");
  const auto& err = std::get<AssemblyError>(result);
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.token, "banana");
  EXPECT_NE(err.message.find("register"), std::string::npos);
  EXPECT_NE(err.ToString().find("line 2"), std::string::npos);
  EXPECT_NE(err.ToString().find("'banana'"), std::string::npos);
}

TEST(AssemblerDiagnostics, UnknownMnemonicNamesTheToken) {
  // Copy out of the temporary variant: std::get on an rvalue returns a
  // reference into the expiring object, so a const& here would dangle.
  const auto err =
      std::get<AssemblyError>(Assemble("nop\nfrobnicate r1\n"));
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.token, "frobnicate");
}

TEST(AssemblerDiagnostics, BadImmediateNamesTheToken) {
  const auto err = std::get<AssemblyError>(Assemble("li r1, twelve\n"));
  EXPECT_EQ(err.line, 1);
  EXPECT_EQ(err.token, "twelve");
  EXPECT_NE(err.message.find("immediate"), std::string::npos);
}

TEST(AssemblerDiagnostics, UndefinedLabelNamesTheToken) {
  const auto err =
      std::get<AssemblyError>(Assemble("jmp nowhere\nhalt\n"));
  EXPECT_EQ(err.token, "nowhere");
  EXPECT_NE(err.message.find("undefined label"), std::string::npos);
}

TEST(AssemblerDiagnostics, RegistersAreValidatedAgainstNumRegs) {
  // r12 is encodable, but an 8-register machine must reject it.
  const auto result = Assemble("add r1, r2, r12\nhalt\n", /*num_regs=*/8);
  const auto& err = std::get<AssemblyError>(result);
  EXPECT_EQ(err.line, 1);
  EXPECT_EQ(err.token, "r12");
  EXPECT_NE(err.message.find("out of range"), std::string::npos);
  EXPECT_NE(err.message.find("r0..r7"), std::string::npos);
  // The same source assembles for a machine with enough registers.
  EXPECT_TRUE(std::holds_alternative<Program>(
      Assemble("add r1, r2, r12\nhalt\n", /*num_regs=*/16)));
}

TEST(AssemblerDiagnostics, NumRegsIsClampedToTheEncodableMaximum) {
  const auto result = Assemble("add r1, r2, r200\nhalt\n", /*num_regs=*/500);
  const auto& err = std::get<AssemblyError>(result);
  EXPECT_EQ(err.token, "r200");
  EXPECT_NE(err.message.find("out of range"), std::string::npos);
}

TEST(Program, DisassembleListsLabels) {
  const auto program = AssembleOrDie("top: addi r1, r1, 1\njmp top\nhalt\n");
  const std::string listing = program.Disassemble();
  EXPECT_NE(listing.find("top:"), std::string::npos);
  EXPECT_NE(listing.find("jmp 0"), std::string::npos);
}

}  // namespace
}  // namespace ultra::isa
