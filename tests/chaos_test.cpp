// Crash-point chaos harness: turns "crash-safe" from a hand-reasoned claim
// into an exhaustively enumerated property.
//
// Method, per workload: run once uninterrupted with the failpoint seam in
// counting mode to learn N, the total number of durability-relevant I/O
// operations (journal writes/fsyncs, atomic-export steps, socket frame
// I/O). Then for every k in 1..N re-run with crash-at-op = k in *silent*
// mode — the process keeps running, but at op k the simulated machine dies:
// every later seam operation is a no-op, so the on-disk state freezes
// exactly as a power cut at that instant would leave it (including the torn
// half-written prefix of the op itself). Disarm, restart/resume on the
// frozen state, and assert the PR 5 / PR 8 invariants at every single k:
//
//   * the journal self-heals to the last whole frame (no discarded bytes
//     remain after recovery),
//   * the recovered export is byte-identical to the uninterrupted run's,
//   * no torn or orphaned `.tmp.` files survive recovery,
//   * the daemon's state-dir lock is released (a new daemon can start).
//
// scripts/chaos_smoke.sh runs the same enumeration with CrashMode::kExit
// (_exit(137) mid-syscall — a literal kill -9) against real subprocesses;
// this file keeps the full enumeration under gtest and ASan. The service
// enumeration is a *universal* property: thread interleaving may shift
// which operation is the k-th, but whichever op the crash lands on, the
// recovery contract must hold.
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "failpoint/failpoint.hpp"
#include "failpoint/io.hpp"
#include "isa/assembler.hpp"
#include "persist/journal.hpp"
#include "persist/serial.hpp"
#include "runtime/sweep_io.hpp"
#include "runtime/sweep_runner.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/sweep_service.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

namespace fp = failpoint;
using core::ProcessorKind;

class TempDir {
 public:
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ultra_chaos_") + info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string File(const std::string& name) const {
    return (path_ / name).string();
  }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Whole-test guard: no enumeration step may leak an armed failpoint.
class ChaosTest : public testing::Test {
 protected:
  ChaosTest() { fp::Registry::Instance().Reset(); }
  ~ChaosTest() override { fp::Registry::Instance().Reset(); }
};

std::vector<runtime::SweepPoint> SmallSweep() {
  const auto program =
      std::make_shared<const isa::Program>(workloads::Fibonacci(9));
  std::vector<runtime::SweepPoint> points;
  for (const int window : {8, 16}) {
    runtime::SweepPoint p;
    p.kind = ProcessorKind::kUltrascalarI;
    p.config.window_size = window;
    p.program = program;
    p.workload = "fib";
    points.push_back(std::move(p));
  }
  return points;
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::string> TmpDroppings(const std::string& dir) {
  std::vector<std::string> out;
  if (!std::filesystem::is_directory(dir)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos) out.push_back(name);
  }
  return out;
}

/// True when the flock on <state_dir>/lock is free — i.e. no daemon (alive
/// or leaked) holds the state directory.
bool StateLockReleased(const std::string& state_dir) {
  const int fd = ::open((state_dir + "/lock").c_str(), O_RDWR);
  if (fd < 0) return true;  // No lock file = nothing holds it.
  const bool free = ::flock(fd, LOCK_EX | LOCK_NB) == 0;
  if (free) ::flock(fd, LOCK_UN);
  ::close(fd);
  return free;
}

// --- Journaled sweep: every crash point ------------------------------------

TEST_F(ChaosTest, JournaledSweepRecoversAtEveryCrashPoint) {
  TempDir tmp;
  fp::Registry& reg = fp::Registry::Instance();
  const std::vector<runtime::SweepPoint> points = SmallSweep();
  runtime::SweepOptions options;
  options.num_threads = 1;  // Deterministic op order: every k fires.
  const runtime::SweepRunner runner(options);

  const auto export_csv = [](const runtime::SweepReport& report,
                             const std::string& csv_path) {
    std::ostringstream os;
    runtime::WriteCsv(os, report.outcomes);
    persist::AtomicWriteFile(csv_path, os.str());
  };

  // Counting pass: the uninterrupted run, seam enabled only to count. N is
  // the number of crash candidates to enumerate.
  reg.EnableCounting();
  export_csv(runner.RunJournaled(points, tmp.File("ref.journal")),
             tmp.File("ref.csv"));
  const std::uint64_t n_ops = reg.ops();
  const std::string ref_csv = ReadFileText(tmp.File("ref.csv"));
  reg.Reset();
  ASSERT_GT(n_ops, 10u) << "the seam should see journal + export traffic";
  ASSERT_FALSE(ref_csv.empty());

  for (std::uint64_t k = 1; k <= n_ops; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                 std::to_string(n_ops));
    const std::string dir = tmp.File("k" + std::to_string(k));
    std::filesystem::create_directories(dir);
    const std::string journal_path = dir + "/sweep.journal";
    const std::string csv_path = dir + "/out.csv";

    // Crash phase. Silent mode: no exception at the crash op itself, but
    // I/O that *observes* the dead machine (opens, reads) fails, so the
    // run may legitimately abort partway — exactly like a real crash.
    reg.Reset();
    reg.ArmCrashAtOp(k, fp::CrashMode::kSilent);
    try {
      export_csv(runner.RunJournaled(points, journal_path), csv_path);
    } catch (const std::exception&) {
    }
    EXPECT_TRUE(reg.crashed()) << "single-threaded runs are deterministic: "
                                  "op k must be reached";
    reg.Reset();

    // Recovery phase, on the frozen wreckage: sweep tmp droppings (what a
    // restarting daemon does), resume from whatever the journal holds,
    // re-export.
    persist::RemoveStaleTmpFiles(dir);
    const runtime::SweepReport resumed = runner.Resume(points, journal_path);
    export_csv(resumed, csv_path);

    EXPECT_EQ(ReadFileText(csv_path), ref_csv)
        << "recovered export must be byte-identical to the uninterrupted run";
    EXPECT_EQ(persist::ScanJournal(journal_path).discarded_bytes, 0u)
        << "journal must have self-healed to the last whole frame";
    EXPECT_TRUE(TmpDroppings(dir).empty())
        << "no torn/orphaned .tmp files may survive recovery";
  }
}

// --- Service submit/restart cycle: every crash point -----------------------

TEST_F(ChaosTest, ServiceSubmitRestartRecoversAtEveryCrashPoint) {
  TempDir tmp;
  fp::Registry& reg = fp::Registry::Instance();
  const std::vector<runtime::SweepPoint> points = SmallSweep();

  const auto make_options = [&](const std::string& tag) {
    service::ServiceOptions options;
    std::filesystem::create_directories(tmp.File(tag));
    options.socket_path = tmp.File(tag + "/svc.sock");
    options.state_dir = tmp.File(tag + "/state");
    options.max_queue = 4;
    options.drain_timeout_seconds = 10.0;
    options.sweep.num_threads = 1;
    return options;
  };
  const auto make_request = [&] {
    service::SubmitRequest request;
    request.points = points;
    request.detach = true;  // Must survive both its client and the daemon.
    request.csv_name = "out.csv";
    return request;
  };
  service::ClientOptions client_options;
  client_options.connect_timeout_seconds = 5.0;
  // The crash freezes the daemon's sends; this deadline is what turns
  // "harness hangs forever on a dead daemon" into a caught TimeoutError.
  client_options.recv_timeout_seconds = 5.0;

  // Counting pass: uninterrupted submit → wait → drain-stop cycle.
  reg.EnableCounting();
  const auto ref_options = make_options("ref");
  {
    service::SweepService svc(ref_options);
    svc.Start();
    service::SweepClient client(ref_options.socket_path, client_options);
    const service::SubmitReply submitted = client.Submit(make_request());
    ASSERT_EQ(submitted.status, service::AdmitStatus::kAccepted);
    const service::WaitReply done =
        client.Wait(service::WaitRequest{submitted.request_id, false, false});
    ASSERT_EQ(done.state, service::RequestState::kDone);
    svc.Stop(/*drain=*/true);
  }
  const std::uint64_t n_ops = reg.ops();
  const std::string ref_csv =
      ReadFileText(ref_options.state_dir + "/out.csv");
  reg.Reset();
  ASSERT_GT(n_ops, 20u) << "the seam should see frame + journal + export "
                           "traffic";
  ASSERT_FALSE(ref_csv.empty());

  for (std::uint64_t k = 1; k <= n_ops; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                 std::to_string(n_ops));
    const auto options = make_options("k" + std::to_string(k));
    const std::string csv_path = options.state_dir + "/out.csv";

    // Crash phase: the daemon (and the client — same process, same frozen
    // seam) dies at op k, wherever that lands this run: admission journal
    // append, per-request journal, export rename, reply send, ...
    reg.Reset();
    reg.ArmCrashAtOp(k, fp::CrashMode::kSilent);
    std::uint64_t request_id = 0;
    {
      service::SweepService svc(options);
      bool started = false;
      try {
        svc.Start();
        started = true;
      } catch (const std::exception&) {
        // Crash landed inside Start() itself (journal open/repair): the
        // daemon never came up. Start()'s failure path must still have
        // released the state-dir lock — recovery below proves it.
      }
      if (started) {
        try {
          service::SweepClient client(options.socket_path, client_options);
          const service::SubmitReply submitted =
              client.Submit(make_request());
          if (submitted.status == service::AdmitStatus::kAccepted) {
            request_id = submitted.request_id;
            (void)client.Wait(
                service::WaitRequest{request_id, false, false});
          }
        } catch (const std::exception&) {
          // TimeoutError, EOF, EIO...: all valid faces of a dead daemon.
        }
        svc.Stop(/*drain=*/false);
      }
    }
    reg.Reset();
    ASSERT_TRUE(StateLockReleased(options.state_dir))
        << "a crashed/failed daemon must not leave the state dir locked";

    // Recovery phase: a fresh daemon on the same state dir. Start() sweeps
    // orphaned tmp files, self-heals the request journal, and re-queues
    // whatever was admitted but unfinished.
    service::SweepService recovered(options);
    recovered.Start();
    const bool was_recovered = recovered.counters().recovered > 0;

    service::SweepClient client(options.socket_path, client_options);
    if (!was_recovered && ReadFileText(csv_path) != ref_csv) {
      // The crash predates durable admission (or the ack): the request is
      // simply gone, exactly as if the client had never submitted. The
      // client-visible contract is "no ack, no promise" — resubmit.
      const service::SubmitReply submitted = client.Submit(make_request());
      ASSERT_EQ(submitted.status, service::AdmitStatus::kAccepted);
      request_id = submitted.request_id;
    }
    // Converge: wait until the export matches the uninterrupted run's.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (ReadFileText(csv_path) != ref_csv &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(ReadFileText(csv_path), ref_csv)
        << "recovered service export must be byte-identical to the "
           "uninterrupted run (request "
        << request_id << (was_recovered ? ", re-queued" : ", resubmitted")
        << ")";
    recovered.Stop(/*drain=*/true);

    EXPECT_TRUE(TmpDroppings(options.state_dir).empty())
        << "no torn/orphaned .tmp files may survive recovery";
    EXPECT_EQ(persist::ScanJournal(options.state_dir + "/requests.journal")
                  .discarded_bytes,
              0u)
        << "request journal must be healed on restart";
    EXPECT_TRUE(StateLockReleased(options.state_dir));
  }
}

// --- Targeted service failpoints ------------------------------------------

TEST_F(ChaosTest, DaemonSurvivesConnectionResetMidReply) {
  TempDir tmp;
  fp::Registry& reg = fp::Registry::Instance();
  service::ServiceOptions options;
  options.socket_path = tmp.File("svc.sock");
  options.state_dir = tmp.File("state");
  options.sweep.num_threads = 1;
  service::SweepService svc(options);
  svc.Start();

  // Site protocol.send is shared by client and daemon (same process): hit 1
  // is the client's request frame, hit 2 the daemon's reply — so reset@2
  // injects ECONNRESET into the *daemon's* SendAll, the branch no test
  // could reach before.
  fp::Schedule s;
  ASSERT_TRUE(fp::ParseScheduleSpec("reset@2", &s));
  reg.Arm("protocol.send", s);
  {
    service::SweepClient client(options.socket_path);
    EXPECT_THROW((void)client.Status(), std::runtime_error)
        << "the daemon dropping the poisoned connection surfaces as EOF";
  }
  EXPECT_EQ(reg.fires("protocol.send"), 1u)
      << "the daemon-side send-failure branch demonstrably executed";
  reg.Reset();

  // The connection died; the daemon did not. A fresh client works.
  service::SweepClient client(options.socket_path);
  EXPECT_NE(client.Status().find("service.accepted"), std::string::npos);
  svc.Stop(/*drain=*/true);
}

// --- Client timeout regression (satellite: SweepClient deadlines) ----------

TEST_F(ChaosTest, ClientTimesOutAgainstStalledServer) {
  TempDir tmp;
  // A deliberately stalled server: accepts the connection, then never
  // reads or writes a byte.
  const std::string sock_path = tmp.File("stall.sock");
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(sock_path.size(), sizeof(addr.sun_path));
  std::strncpy(addr.sun_path, sock_path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  int accepted_fd = -1;
  std::thread accepter([&] { accepted_fd = ::accept(listen_fd, nullptr, 0); });

  service::ClientOptions client_options;
  client_options.connect_timeout_seconds = 2.0;
  client_options.recv_timeout_seconds = 0.2;
  service::SweepClient client(sock_path, client_options);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.Status(), service::TimeoutError)
      << "a stalled server must surface as TimeoutError, not a hang";
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "the deadline must bound the stall";

  accepter.join();
  if (accepted_fd >= 0) ::close(accepted_fd);
  ::close(listen_fd);
}

TEST_F(ChaosTest, ClientWithoutTimeoutStillWorksAgainstLiveDaemon) {
  TempDir tmp;
  service::ServiceOptions options;
  options.socket_path = tmp.File("svc.sock");
  options.state_dir = tmp.File("state");
  options.sweep.num_threads = 1;
  service::SweepService svc(options);
  svc.Start();

  // Deadlines set, daemon healthy: nothing should time out.
  service::ClientOptions client_options;
  client_options.connect_timeout_seconds = 5.0;
  client_options.recv_timeout_seconds = 5.0;
  service::SweepClient client(options.socket_path, client_options);
  service::SubmitRequest request;
  request.points = SmallSweep();
  request.detach = true;
  const service::SubmitReply submitted = client.Submit(request);
  ASSERT_EQ(submitted.status, service::AdmitStatus::kAccepted);
  const service::WaitReply done = client.Wait(
      service::WaitRequest{submitted.request_id, /*want_csv=*/true, false});
  EXPECT_EQ(done.state, service::RequestState::kDone);
  EXPECT_FALSE(done.csv_text.empty());
  svc.Stop(/*drain=*/true);
}

}  // namespace
}  // namespace ultra
