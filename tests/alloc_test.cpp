// Steady-state allocation test for the cycle loops (own binary: it
// replaces the global allocator).
//
// Every operator new is counted. For each processor model we run the same
// configuration on a short and on a long ALU-only workload; if any cycle
// phase allocated, the long run's allocation count would exceed the short
// run's by at least the extra simulated cycles (hundreds). The allowed
// delta only covers amortized container growth that is proportional to
// *results*, not cycles: the commit timeline and the fetch buffer double
// O(log extra_instructions) times.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/core.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workloads.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ultra {
namespace {

using core::CoreConfig;
using core::ProcessorKind;

struct RunCost {
  std::uint64_t allocations = 0;
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
};

RunCost MeasuredRun(ProcessorKind kind, const CoreConfig& cfg,
                    const isa::Program& program) {
  auto proc = core::MakeProcessor(kind, cfg);
  const std::uint64_t before = g_allocations.load();
  const auto result = proc->Run(program);
  RunCost cost;
  cost.allocations = g_allocations.load() - before;
  cost.cycles = result.cycles;
  cost.committed = result.committed;
  EXPECT_TRUE(result.halted);
  return cost;
}

class SteadyStateAllocations : public testing::TestWithParam<ProcessorKind> {
};

TEST_P(SteadyStateAllocations, CycleLoopDoesNotTouchTheAllocator) {
  const ProcessorKind kind = GetParam();
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  // ALU-only dependency chains: no memory traffic, no branches, so the
  // steady state exercises exactly the per-cycle phases (datapath
  // propagation, sequencing, scheduling, execute, commit, fetch).
  const auto short_prog = workloads::DependencyChains(
      {.num_instructions = 512, .ilp = 4, .seed = 11});
  const auto long_prog = workloads::DependencyChains(
      {.num_instructions = 4096, .ilp = 4, .seed = 11});

  const RunCost short_run = MeasuredRun(kind, cfg, short_prog);
  const RunCost long_run = MeasuredRun(kind, cfg, long_prog);
  ASSERT_GT(long_run.cycles, short_run.cycles + 500u);

  // Per-run setup (state buffers, predictor, memory model) costs the same
  // in both runs and cancels in the delta; a single allocation per cycle
  // would put the delta above the extra-cycle count.
  const std::uint64_t delta = long_run.allocations - short_run.allocations;
  const std::uint64_t extra_cycles = long_run.cycles - short_run.cycles;
  EXPECT_LT(delta, 64u) << "long run: " << long_run.allocations
                        << " allocations over " << long_run.cycles
                        << " cycles; short run: " << short_run.allocations
                        << " over " << short_run.cycles;
  EXPECT_LT(delta * 8, extra_cycles);
}

/// Telemetry variant of the short-vs-long methodology. The sink is fresh
/// per run, so the registration/bind allocations at the top of Run() cost
/// the same in both runs and cancel in the delta; what the delta isolates
/// is the per-cycle hook cost, which must be zero. The tracer ring is
/// pre-sized outside the measured region -- overwriting a full ring is the
/// designed steady state and must not allocate either.
RunCost MeasuredTelemetryRun(ProcessorKind kind, const CoreConfig& base,
                             const isa::Program& program, bool metrics,
                             bool trace) {
  telemetry::PipelineTracer tracer({.capacity = std::size_t{1} << 14});
  telemetry::RunTelemetry telem;
  telem.metrics_enabled = metrics;
  if (trace) telem.tracer = &tracer;
  CoreConfig cfg = base;
  cfg.telemetry = &telem;
  return MeasuredRun(kind, cfg, program);
}

TEST_P(SteadyStateAllocations, TelemetryDisabledAddsNoAllocations) {
  const ProcessorKind kind = GetParam();
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  const auto short_prog = workloads::DependencyChains(
      {.num_instructions = 512, .ilp = 4, .seed = 11});
  const auto long_prog = workloads::DependencyChains(
      {.num_instructions = 4096, .ilp = 4, .seed = 11});

  const RunCost short_run =
      MeasuredTelemetryRun(kind, cfg, short_prog, false, false);
  const RunCost long_run =
      MeasuredTelemetryRun(kind, cfg, long_prog, false, false);
  ASSERT_GT(long_run.cycles, short_run.cycles + 500u);
  const std::uint64_t delta = long_run.allocations - short_run.allocations;
  EXPECT_LT(delta, 64u);
  EXPECT_LT(delta * 8, long_run.cycles - short_run.cycles);
}

TEST_P(SteadyStateAllocations, TelemetryEnabledStaysAllocationFree) {
  const ProcessorKind kind = GetParam();
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  const auto short_prog = workloads::DependencyChains(
      {.num_instructions = 512, .ilp = 4, .seed = 11});
  const auto long_prog = workloads::DependencyChains(
      {.num_instructions = 4096, .ilp = 4, .seed = 11});

  const RunCost short_run =
      MeasuredTelemetryRun(kind, cfg, short_prog, true, true);
  const RunCost long_run =
      MeasuredTelemetryRun(kind, cfg, long_prog, true, true);
  ASSERT_GT(long_run.cycles, short_run.cycles + 500u);
  const std::uint64_t delta = long_run.allocations - short_run.allocations;
  EXPECT_LT(delta, 64u);
  EXPECT_LT(delta * 8, long_run.cycles - short_run.cycles);
}

TEST_P(SteadyStateAllocations, PackedCycleLoopDoesNotTouchTheAllocator) {
  const ProcessorKind kind = GetParam();
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.datapath_eval = core::DatapathEval::kPacked;
  const auto short_prog = workloads::DependencyChains(
      {.num_instructions = 512, .ilp = 4, .seed = 11});
  const auto long_prog = workloads::DependencyChains(
      {.num_instructions = 4096, .ilp = 4, .seed = 11});

  const RunCost short_run = MeasuredRun(kind, cfg, short_prog);
  const RunCost long_run = MeasuredRun(kind, cfg, long_prog);
  ASSERT_GT(long_run.cycles, short_run.cycles + 500u);
  const std::uint64_t delta = long_run.allocations - short_run.allocations;
  const std::uint64_t extra_cycles = long_run.cycles - short_run.cycles;
  EXPECT_LT(delta, 64u) << "long run: " << long_run.allocations
                        << " allocations over " << long_run.cycles
                        << " cycles; short run: " << short_run.allocations
                        << " over " << short_run.cycles;
  EXPECT_LT(delta * 8, extra_cycles);
}

// The fallback-free packed loops keep store forwarding and the telemetry
// hooks inside the word-parallel walk; with both engaged the steady state
// must still stay off the allocator.
TEST_P(SteadyStateAllocations, PackedForwardingTelemetryStaysAllocationFree) {
  const ProcessorKind kind = GetParam();
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.datapath_eval = core::DatapathEval::kPacked;
  cfg.store_forwarding = true;
  const auto short_prog = workloads::DependencyChains(
      {.num_instructions = 512, .ilp = 4, .seed = 11});
  const auto long_prog = workloads::DependencyChains(
      {.num_instructions = 4096, .ilp = 4, .seed = 11});

  const RunCost short_run =
      MeasuredTelemetryRun(kind, cfg, short_prog, true, true);
  const RunCost long_run =
      MeasuredTelemetryRun(kind, cfg, long_prog, true, true);
  ASSERT_GT(long_run.cycles, short_run.cycles + 500u);
  const std::uint64_t delta = long_run.allocations - short_run.allocations;
  EXPECT_LT(delta, 64u) << "long run: " << long_run.allocations
                        << " allocations over " << long_run.cycles
                        << " cycles; short run: " << short_run.allocations
                        << " over " << short_run.cycles;
  EXPECT_LT(delta * 8, long_run.cycles - short_run.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllCores, SteadyStateAllocations,
    testing::Values(ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
                    ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid),
    [](const auto& info) {
      return std::string(core::ProcessorKindName(info.param));
    });

}  // namespace
}  // namespace ultra
