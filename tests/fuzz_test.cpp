// Randomized cross-processor fuzzing with speculative control flow.
//
// RandomForwardDag generates acyclic control-flow graphs (forward branches
// and jumps only), so every program terminates on every path. Each seed is
// run on all four processor models under several predictors and feature
// combinations and must reproduce the functional simulator's state.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using core::CoreConfig;
using core::ProcessorKind;

void ExpectMatchesFunctional(const isa::Program& program,
                             const CoreConfig& cfg) {
  core::FunctionalSimulator fn;
  const auto ref = fn.Run(program);
  ASSERT_TRUE(ref.halted);
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    auto proc = core::MakeProcessor(kind, cfg);
    const auto result = proc->Run(program);
    ASSERT_TRUE(result.halted);
    for (std::size_t r = 0; r < ref.regs.size(); ++r) {
      ASSERT_EQ(result.regs[r], ref.regs[r]) << "r" << r;
    }
    ASSERT_EQ(result.committed, ref.instructions);
  }
}

class DagFuzz : public testing::TestWithParam<unsigned> {};

TEST_P(DagFuzz, BtfnPredictor) {
  const auto program = workloads::RandomForwardDag({.seed = GetParam()});
  CoreConfig cfg;
  cfg.window_size = 24;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(DagFuzz, NotTakenPredictorWithBandwidthLimit) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 10, .block_size = 5, .seed = GetParam() ^ 0x5555});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.predictor = core::PredictorKind::kNotTaken;
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(DagFuzz, TwoBitPredictorWithForwardingAndSharedAlus) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 14, .block_size = 4, .branch_prob = 0.9,
       .memory_words = 8, .seed = GetParam() ^ 0xaaaa});
  CoreConfig cfg;
  cfg.window_size = 20;
  cfg.cluster_size = 5;
  cfg.predictor = core::PredictorKind::kTwoBit;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.store_forwarding = true;
  cfg.num_alus = 3;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(DagFuzz, OracleWithFatTreeMemory) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 8, .block_size = 8, .seed = GetParam() ^ 0x1234});
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kOracle;
  cfg.mem.mode = memory::MemTimingMode::kFatTree;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  ExpectMatchesFunctional(program, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagFuzz, testing::Range(400u, 420u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(DagGenerator, AlwaysTerminates) {
  for (unsigned seed = 0; seed < 50; ++seed) {
    const auto program = workloads::RandomForwardDag({.seed = seed});
    core::FunctionalSimulator fn;
    const auto ref = fn.Run(program, 100000);
    EXPECT_TRUE(ref.halted) << "seed " << seed;
  }
}

TEST(DagGenerator, BranchTargetsAreStrictlyForward) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    const auto program = workloads::RandomForwardDag({.seed = seed});
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
      const auto& inst = program.at(pc);
      if (isa::IsControlFlow(inst.op)) {
        EXPECT_GT(static_cast<std::size_t>(inst.imm), pc)
            << "seed " << seed << " pc " << pc;
      }
    }
  }
}

}  // namespace
}  // namespace ultra
