// Randomized cross-processor fuzzing with speculative control flow.
//
// RandomForwardDag generates acyclic control-flow graphs (forward branches
// and jumps only), so every program terminates on every path. Each seed is
// run on all four processor models under several predictors and feature
// combinations and must reproduce the functional simulator's state.
#include <gtest/gtest.h>

#include <random>

#include "core/config_codec.hpp"
#include "core/core.hpp"
#include "isa/program_codec.hpp"
#include "persist/checkpoint.hpp"
#include "runtime/sweep_journal.hpp"
#include "service/protocol.hpp"
#include "telemetry/snapshot_codec.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using core::CoreConfig;
using core::ProcessorKind;

// Cross-core equivalence harness: runs @p program on all four processor
// models under @p cfg and asserts each reproduces the functional
// simulator's final registers, final data memory, and committed count.
void ExpectMatchesFunctional(const isa::Program& program,
                             const CoreConfig& cfg) {
  core::FunctionalSimulator fn;
  const auto ref = fn.Run(program);
  ASSERT_TRUE(ref.halted);
  const auto ref_memory = ref.memory.Snapshot();
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    auto proc = core::MakeProcessor(kind, cfg);
    const auto result = proc->Run(program);
    ASSERT_TRUE(result.halted);
    for (std::size_t r = 0; r < ref.regs.size(); ++r) {
      ASSERT_EQ(result.regs[r], ref.regs[r]) << "r" << r;
    }
    ASSERT_EQ(result.memory, ref_memory);
    ASSERT_EQ(result.committed, ref.instructions);
  }
}

class DagFuzz : public testing::TestWithParam<unsigned> {};

TEST_P(DagFuzz, BtfnPredictor) {
  const auto program = workloads::RandomForwardDag({.seed = GetParam()});
  CoreConfig cfg;
  cfg.window_size = 24;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(DagFuzz, NotTakenPredictorWithBandwidthLimit) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 10, .block_size = 5, .seed = GetParam() ^ 0x5555});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.predictor = core::PredictorKind::kNotTaken;
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(DagFuzz, TwoBitPredictorWithForwardingAndSharedAlus) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 14, .block_size = 4, .branch_prob = 0.9,
       .memory_words = 8, .seed = GetParam() ^ 0xaaaa});
  CoreConfig cfg;
  cfg.window_size = 20;
  cfg.cluster_size = 5;
  cfg.predictor = core::PredictorKind::kTwoBit;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.store_forwarding = true;
  cfg.num_alus = 3;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(DagFuzz, OracleWithFatTreeMemory) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 8, .block_size = 8, .seed = GetParam() ^ 0x1234});
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kOracle;
  cfg.mem.mode = memory::MemTimingMode::kFatTree;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  ExpectMatchesFunctional(program, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagFuzz, testing::Range(400u, 420u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Straight-line and loop generators round out the DAG programs above: heavy
// memory traffic, shared-ALU contention, and store forwarding all have to
// leave the same architectural state as the functional simulator.
class MixFuzz : public testing::TestWithParam<unsigned> {};

TEST_P(MixFuzz, StraightLineMixAllCores) {
  const auto program = workloads::RandomMix(
      {.num_instructions = 200, .memory_words = 32, .seed = GetParam()});
  CoreConfig cfg;
  cfg.window_size = 24;
  cfg.cluster_size = 6;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(MixFuzz, StoreHeavyMixWithForwardingAndSharedAlus) {
  const auto program = workloads::RandomMix(
      {.num_instructions = 160, .load_fraction = 0.25,
       .store_fraction = 0.25, .memory_words = 16,
       .seed = GetParam() ^ 0x9e37});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  cfg.store_forwarding = true;
  cfg.num_alus = 2;
  ExpectMatchesFunctional(program, cfg);
}

TEST_P(MixFuzz, MemoryStreamUnderFatTree) {
  const auto program = workloads::MemoryStream(
      {.iterations = 12, .loads_per_iter = 6,
       .stride_words = 1 + int(GetParam() % 3), .seed = GetParam()});
  CoreConfig cfg;
  cfg.window_size = 20;
  cfg.cluster_size = 5;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kFatTree;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  ExpectMatchesFunctional(program, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixFuzz, testing::Range(700u, 712u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(KernelEquivalence, SortAndIndirectionMatchFunctionalState) {
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kTwoBit;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectMatchesFunctional(workloads::BubbleSort(10), cfg);
  ExpectMatchesFunctional(workloads::IndirectSum(16), cfg);
  ExpectMatchesFunctional(workloads::MemCopy(24), cfg);
}

// The incremental and bit-packed datapath evaluations
// (CoreConfig::datapath_eval) are pure simulator optimizations: on every
// program they must produce the exact RunResult of the full-recompute
// reference path — cycle-for-cycle, not just the same architectural state.
// Configurations a packed loop does not cover fall back to the incremental
// path and must still match.
void ExpectIncrementalMatchesFullRecompute(const isa::Program& program,
                                           CoreConfig cfg) {
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    cfg.datapath_eval = core::DatapathEval::kFullRecompute;
    const auto full = core::MakeProcessor(kind, cfg)->Run(program);
    for (const auto eval :
         {core::DatapathEval::kIncremental, core::DatapathEval::kPacked}) {
      SCOPED_TRACE(eval == core::DatapathEval::kPacked ? "packed"
                                                       : "incremental");
      cfg.datapath_eval = eval;
      const auto incr = core::MakeProcessor(kind, cfg)->Run(program);
      ASSERT_EQ(incr.halted, full.halted);
      ASSERT_EQ(incr.cycles, full.cycles);
      ASSERT_EQ(incr.committed, full.committed);
      ASSERT_EQ(incr.regs, full.regs);
      ASSERT_EQ(incr.memory, full.memory);
      ASSERT_EQ(incr.stats.mispredictions, full.stats.mispredictions);
      ASSERT_EQ(incr.stats.squashed_instructions,
                full.stats.squashed_instructions);
      ASSERT_EQ(incr.stats.fetch_stall_cycles, full.stats.fetch_stall_cycles);
      ASSERT_EQ(incr.stats.window_full_cycles, full.stats.window_full_cycles);
      ASSERT_EQ(incr.timeline.size(), full.timeline.size());
      for (std::size_t t = 0; t < incr.timeline.size(); ++t) {
        ASSERT_EQ(incr.timeline[t].issue_cycle, full.timeline[t].issue_cycle)
            << "t=" << t;
        ASSERT_EQ(incr.timeline[t].complete_cycle,
                  full.timeline[t].complete_cycle)
            << "t=" << t;
        ASSERT_EQ(incr.timeline[t].commit_cycle, full.timeline[t].commit_cycle)
            << "t=" << t;
      }
    }
  }
}

class EvalPathFuzz : public testing::TestWithParam<unsigned> {};

TEST_P(EvalPathFuzz, DagWithSpeculationAndSquashes) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 12, .block_size = 5, .seed = GetParam()});
  CoreConfig cfg;
  cfg.window_size = 24;
  cfg.cluster_size = 6;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectIncrementalMatchesFullRecompute(program, cfg);
}

TEST_P(EvalPathFuzz, MixWithMemoryLatencyForwardingAndSharedAlus) {
  const auto program = workloads::RandomMix(
      {.num_instructions = 150, .load_fraction = 0.2, .store_fraction = 0.2,
       .memory_words = 16, .seed = GetParam() ^ 0xbeef});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  cfg.store_forwarding = true;
  cfg.num_alus = 3;
  ExpectIncrementalMatchesFullRecompute(program, cfg);
}

TEST_P(EvalPathFuzz, PipelinedUsiReadNetwork) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 8, .block_size = 6, .seed = GetParam() ^ 0x7f7f});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.predictor = core::PredictorKind::kNotTaken;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.pipeline_levels_per_stage = 2;  // Exercises the last-writer scan.
  ExpectIncrementalMatchesFullRecompute(program, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalPathFuzz, testing::Range(900u, 912u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Checkpoint/restore fuzz: checkpoint every core at a seed-derived cycle
// mid-run and require the resumed run to finish indistinguishably from the
// uninterrupted one — full RunResult equality, timeline included. This is
// the randomized complement to persist_test's fixed-cycle coverage.
void ExpectCheckpointRoundTrip(const isa::Program& program,
                               const CoreConfig& cfg, unsigned seed) {
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    const auto proc = core::MakeProcessor(kind, cfg);
    const auto base = proc->Run(program);
    ASSERT_TRUE(base.halted);
    if (base.cycles < 2) continue;
    // A deterministic pseudo-random interior cycle, different per seed and
    // per core kind.
    const std::uint64_t mix =
        (seed * 2654435761u) ^ (static_cast<std::uint64_t>(kind) << 16);
    const std::uint64_t cycle = 1 + mix % (base.cycles - 1);
    SCOPED_TRACE("checkpoint cycle " + std::to_string(cycle) + " of " +
                 std::to_string(base.cycles));
    const persist::Checkpoint ckpt = proc->SaveCheckpoint(program, cycle);
    const auto resumed = proc->RestoreCheckpoint(program, ckpt);
    ASSERT_EQ(resumed.halted, base.halted);
    ASSERT_EQ(resumed.cycles, base.cycles);
    ASSERT_EQ(resumed.committed, base.committed);
    ASSERT_EQ(resumed.regs, base.regs);
    ASSERT_EQ(resumed.memory, base.memory);
    ASSERT_EQ(resumed.stats.mispredictions, base.stats.mispredictions);
    ASSERT_EQ(resumed.stats.squashed_instructions,
              base.stats.squashed_instructions);
    ASSERT_EQ(resumed.stats.forwarded_loads, base.stats.forwarded_loads);
    ASSERT_EQ(resumed.stats.fetch_stall_cycles, base.stats.fetch_stall_cycles);
    ASSERT_EQ(resumed.stats.window_full_cycles, base.stats.window_full_cycles);
    ASSERT_EQ(resumed.stats.fault.injected, base.stats.fault.injected);
    ASSERT_EQ(resumed.stats.fault.divergences, base.stats.fault.divergences);
    ASSERT_EQ(resumed.stats.fault.resyncs, base.stats.fault.resyncs);
    ASSERT_EQ(resumed.timeline.size(), base.timeline.size());
    for (std::size_t t = 0; t < resumed.timeline.size(); ++t) {
      ASSERT_EQ(resumed.timeline[t].seq, base.timeline[t].seq) << "t=" << t;
      ASSERT_EQ(resumed.timeline[t].station, base.timeline[t].station)
          << "t=" << t;
      ASSERT_EQ(resumed.timeline[t].fetch_cycle, base.timeline[t].fetch_cycle)
          << "t=" << t;
      ASSERT_EQ(resumed.timeline[t].issue_cycle, base.timeline[t].issue_cycle)
          << "t=" << t;
      ASSERT_EQ(resumed.timeline[t].complete_cycle,
                base.timeline[t].complete_cycle)
          << "t=" << t;
      ASSERT_EQ(resumed.timeline[t].commit_cycle,
                base.timeline[t].commit_cycle)
          << "t=" << t;
    }
  }
}

class CheckpointFuzz : public testing::TestWithParam<unsigned> {};

TEST_P(CheckpointFuzz, DagWithSpeculation) {
  const auto program = workloads::RandomForwardDag(
      {.num_blocks = 10, .block_size = 5, .seed = GetParam()});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  ExpectCheckpointRoundTrip(program, cfg, GetParam());
}

TEST_P(CheckpointFuzz, MixUnderMemoryLatencyAndForwarding) {
  const auto program = workloads::RandomMix(
      {.num_instructions = 150, .load_fraction = 0.2, .store_fraction = 0.2,
       .memory_words = 16, .seed = GetParam() ^ 0x51ed});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.predictor = core::PredictorKind::kTwoBit;
  cfg.mem.mode = memory::MemTimingMode::kFatTree;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  cfg.store_forwarding = true;
  cfg.num_alus = 3;
  ExpectCheckpointRoundTrip(program, cfg, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzz, testing::Range(1200u, 1208u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Deserializer fuzz ----------------------------------------------------
//
// Every binary decoder must treat arbitrary bytes as "this artifact is
// unusable" (persist::FormatError), never as a crash, hang, or huge
// allocation: these decoders sit behind journal payloads, checkpoint files,
// repro bundles, and now the sweep service's network frames, all of which
// can arrive truncated, bit-rotted, or hostile.

/// Feeds @p bytes to every decoder; success and FormatError are the only
/// acceptable outcomes. (std::bad_alloc here would mean a corrupt length
/// field drove an unbounded allocation — the exact bug the decoders clamp
/// against.)
void ExpectDecodersRejectGracefully(const std::vector<std::uint8_t>& bytes) {
  const auto try_decode = [&](auto&& decode) {
    persist::Decoder d(bytes);
    try {
      (void)decode(d);
    } catch (const persist::FormatError&) {
      // The expected rejection path.
    }
  };
  try_decode([](persist::Decoder& d) { return isa::DecodeProgram(d); });
  try_decode([](persist::Decoder& d) { return core::DecodeCoreConfig(d); });
  try_decode([](persist::Decoder& d) { return telemetry::DecodeSnapshot(d); });
  try_decode([](persist::Decoder& d) { return runtime::DecodeOutcome(d); });
  try_decode(
      [](persist::Decoder& d) { return service::DecodeSubmitRequest(d); });
  try_decode(
      [](persist::Decoder& d) { return service::DecodeSubmitReply(d); });
  try_decode([](persist::Decoder& d) { return service::DecodeWaitReply(d); });
  try {
    (void)persist::DecodeCheckpoint(bytes);
  } catch (const persist::FormatError&) {
  }
  try {
    (void)workloads::DecodeTraceBinary(bytes);
  } catch (const persist::FormatError&) {
  }
  try {
    (void)workloads::DecodeTraceText(std::string_view(
        reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  } catch (const persist::FormatError&) {
  }
}

class DecoderFuzz : public testing::TestWithParam<unsigned> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashDecoders) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> length(0, 512);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes(length(rng));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
    ExpectDecodersRejectGracefully(bytes);
  }
}

TEST_P(DecoderFuzz, MutatedValidEncodingsNeverCrashDecoders) {
  // Mutations of *valid* encodings probe deeper than pure noise: most random
  // strings die at the first length field, while a flipped byte inside a
  // valid artifact reaches the interior of every decode loop.
  persist::Encoder e;
  isa::EncodeProgram(e, workloads::Fibonacci(8));
  // A hierarchy-enabled config, so flips reach the new cache-geometry and
  // prefetch validation paths in DecodeCoreConfig.
  CoreConfig hier;
  hier.mem.hierarchy.l1i.enabled = true;
  hier.mem.hierarchy.l1d.enabled = true;
  hier.mem.hierarchy.l2.enabled = true;
  hier.mem.hierarchy.prefetch.depth = 2;
  core::EncodeCoreConfig(e, hier);
  const auto trace_bytes = workloads::EncodeTraceBinary(
      workloads::RecordTrace("fuzz", workloads::Fibonacci(8)));
  e.Bytes(trace_bytes);
  const std::vector<std::uint8_t> valid = e.Take();

  std::mt19937 rng(GetParam() * 7919u + 13u);
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int round = 0; round < 200; ++round) {
    auto mutated = valid;
    // A couple of bit flips plus a truncation.
    mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    mutated.resize(pos(rng) + 1);
    ExpectDecodersRejectGracefully(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, testing::Range(3000u, 3008u),
                         [](const testing::TestParamInfo<unsigned>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(DagGenerator, AlwaysTerminates) {
  for (unsigned seed = 0; seed < 50; ++seed) {
    const auto program = workloads::RandomForwardDag({.seed = seed});
    core::FunctionalSimulator fn;
    const auto ref = fn.Run(program, 100000);
    EXPECT_TRUE(ref.halted) << "seed " << seed;
  }
}

TEST(DagGenerator, BranchTargetsAreStrictlyForward) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    const auto program = workloads::RandomForwardDag({.seed = seed});
    for (std::size_t pc = 0; pc < program.size(); ++pc) {
      const auto& inst = program.at(pc);
      if (isa::IsControlFlow(inst.op)) {
        EXPECT_GT(static_cast<std::size_t>(inst.imm), pc)
            << "seed " << seed << " pc " << pc;
      }
    }
  }
}

}  // namespace
}  // namespace ultra
