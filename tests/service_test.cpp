// Tests for the crash-restartable sweep service (src/service/): protocol
// round-trips, end-to-end submit/wait over a real unix-domain socket,
// bounded admission with overload rejection and recovery, request deadlines,
// client-disconnect cancellation, graceful drain, journal self-healing at
// startup, and the headline robustness property — a daemon killed mid-sweep
// restarts and produces an export byte-identical to an uninterrupted run.
//
// The "crash" here is SweepService::Stop(drain=false): a hard cooperative
// cancel that joins threads but, like a real SIGKILL, writes no done
// records and journals no cancelled points. The CI service smoke job
// (scripts/service_smoke.sh) covers the literal kill -9 against a live
// daemon process; these tests keep the same recovery machinery under gtest
// and ASan.
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "persist/journal.hpp"
#include "persist/serial.hpp"
#include "runtime/sweep_io.hpp"
#include "runtime/sweep_runner.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/sweep_service.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using core::ProcessorKind;

/// A scratch directory unique to the current test, cleaned up on teardown.
/// Also provides a socket path short enough for sun_path.
class TempDir {
 public:
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ultra_svc_") + info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string File(const std::string& name) const {
    return (path_ / name).string();
  }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// A small deterministic sweep: 2 kinds x 2 windows over one program.
std::vector<runtime::SweepPoint> SmallSweep(int fib = 10) {
  const auto program =
      std::make_shared<const isa::Program>(workloads::Fibonacci(fib));
  std::vector<runtime::SweepPoint> points;
  for (const ProcessorKind kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI}) {
    for (const int window : {8, 16}) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = window;
      p.program = program;
      p.workload = "fib";
      points.push_back(std::move(p));
    }
  }
  return points;
}

/// A sweep whose points never halt on their own (max_cycles unbounded):
/// only cancellation — deadline, client cancel, drain — can end them.
std::vector<runtime::SweepPoint> SpinSweep(std::size_t n_points = 1) {
  const auto program = std::make_shared<const isa::Program>(
      isa::AssembleOrDie("loop: jmp loop\n"));
  std::vector<runtime::SweepPoint> points;
  for (std::size_t i = 0; i < n_points; ++i) {
    runtime::SweepPoint p;
    p.kind = ProcessorKind::kUltrascalarI;
    p.config.window_size = 8;
    p.config.max_cycles = ~0ull;
    p.program = program;
    p.workload = "spin";
    points.push_back(std::move(p));
  }
  return points;
}

service::ServiceOptions MakeOptions(const TempDir& tmp) {
  service::ServiceOptions options;
  options.socket_path = tmp.File("svc.sock");
  options.state_dir = tmp.File("state");
  options.max_queue = 4;
  options.drain_timeout_seconds = 10.0;
  options.sweep.num_threads = 2;
  return options;
}

/// The reference artifact: the same points run locally, no service involved.
std::string LocalCsv(const std::vector<runtime::SweepPoint>& points) {
  runtime::SweepOptions options;
  options.num_threads = 2;
  const runtime::SweepRunner runner(options);
  std::ostringstream os;
  runtime::WriteCsv(os, runner.Run(points));
  return os.str();
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- Protocol round-trips -------------------------------------------------

TEST(ServiceProtocol, SubmitRequestRoundTrips) {
  service::SubmitRequest req;
  req.points = SmallSweep();
  req.deadline_seconds = 12.5;
  req.detach = true;
  req.tag = "nightly";
  req.csv_name = "out.csv";
  req.json_name = "out.json";

  persist::Encoder e;
  service::EncodeSubmitRequest(e, req);
  persist::Decoder d(e.bytes());
  const service::SubmitRequest back = service::DecodeSubmitRequest(d);
  EXPECT_TRUE(d.AtEnd());
  ASSERT_EQ(back.points.size(), req.points.size());
  EXPECT_EQ(back.deadline_seconds, req.deadline_seconds);
  EXPECT_EQ(back.detach, req.detach);
  EXPECT_EQ(back.tag, req.tag);
  EXPECT_EQ(back.csv_name, req.csv_name);
  EXPECT_EQ(back.json_name, req.json_name);
  for (std::size_t i = 0; i < back.points.size(); ++i) {
    EXPECT_EQ(back.points[i].kind, req.points[i].kind);
    EXPECT_EQ(back.points[i].workload, req.points[i].workload);
    EXPECT_EQ(back.points[i].config.window_size,
              req.points[i].config.window_size);
    ASSERT_NE(back.points[i].program, nullptr);
    EXPECT_EQ(back.points[i].program->size(), req.points[i].program->size());
  }
}

TEST(ServiceProtocol, RepliesRoundTrip) {
  {
    persist::Encoder e;
    service::EncodeSubmitReply(
        e, {service::AdmitStatus::kOverloaded, 7, 4, "queue full"});
    persist::Decoder d(e.bytes());
    const service::SubmitReply r = service::DecodeSubmitReply(d);
    EXPECT_EQ(r.status, service::AdmitStatus::kOverloaded);
    EXPECT_EQ(r.request_id, 7u);
    EXPECT_EQ(r.queue_depth, 4u);
    EXPECT_EQ(r.message, "queue full");
  }
  {
    persist::Encoder e;
    service::WaitReply reply;
    reply.state = service::RequestState::kDeadlineExceeded;
    reply.ok_points = 3;
    reply.failed_points = 1;
    reply.csv_text = "a,b\n";
    reply.message = "late";
    service::EncodeWaitReply(e, reply);
    persist::Decoder d(e.bytes());
    const service::WaitReply r = service::DecodeWaitReply(d);
    EXPECT_EQ(r.state, service::RequestState::kDeadlineExceeded);
    EXPECT_EQ(r.ok_points, 3u);
    EXPECT_EQ(r.failed_points, 1u);
    EXPECT_EQ(r.csv_text, "a,b\n");
    EXPECT_EQ(r.message, "late");
  }
  {
    // Corrupt enum values must be FormatError, not out-of-range enums.
    persist::Encoder e;
    e.U8(250);
    e.U64(0);
    e.U64(0);
    e.Str("");
    persist::Decoder d(e.bytes());
    EXPECT_THROW((void)service::DecodeSubmitReply(d), persist::FormatError);
  }
}

// --- End to end over a real socket ---------------------------------------

TEST(SweepService, SubmitWaitExportMatchesLocalRunByteForByte) {
  const TempDir tmp;
  service::SweepService svc(MakeOptions(tmp));
  svc.Start();

  service::SweepClient client(svc.options().socket_path);
  service::SubmitRequest req;
  req.points = SmallSweep();
  req.csv_name = "sweep.csv";
  req.json_name = "sweep.json";
  const service::SubmitReply admitted = client.Submit(req);
  ASSERT_EQ(admitted.status, service::AdmitStatus::kAccepted);
  ASSERT_NE(admitted.request_id, 0u);

  service::WaitRequest wait;
  wait.request_id = admitted.request_id;
  wait.want_csv = true;
  wait.want_json = true;
  const service::WaitReply done = client.Wait(wait);
  EXPECT_EQ(done.state, service::RequestState::kDone);
  EXPECT_EQ(done.ok_points, req.points.size());
  EXPECT_EQ(done.failed_points, 0u);

  // The reply's bytes, the on-disk export, and a serverless local run of
  // the same points must all be the same artifact.
  const std::string local = LocalCsv(req.points);
  EXPECT_EQ(done.csv_text, local);
  EXPECT_EQ(ReadFileText(tmp.File("state/sweep.csv")), local);
  EXPECT_FALSE(done.json_text.empty());
  EXPECT_EQ(ReadFileText(tmp.File("state/sweep.json")), done.json_text);

  const std::string metrics = client.Status();
  EXPECT_NE(metrics.find("service.accepted 1"), std::string::npos);
  EXPECT_NE(metrics.find("service.completed 1"), std::string::npos);
  EXPECT_NE(metrics.find("sweep.attempts"), std::string::npos);

  svc.Stop(/*drain=*/true);
  EXPECT_FALSE(svc.running());
}

TEST(SweepService, RejectsInvalidSubmissions) {
  const TempDir tmp;
  service::SweepService svc(MakeOptions(tmp));
  svc.Start();
  service::SweepClient client(svc.options().socket_path);

  service::SubmitRequest empty;
  EXPECT_EQ(client.Submit(empty).status, service::AdmitStatus::kInvalid);

  service::SubmitRequest escape;
  escape.points = SmallSweep();
  escape.csv_name = "../outside.csv";  // Must not escape the state dir.
  EXPECT_EQ(client.Submit(escape).status, service::AdmitStatus::kInvalid);

  service::SubmitRequest slash;
  slash.points = SmallSweep();
  slash.json_name = "sub/dir.json";
  EXPECT_EQ(client.Submit(slash).status, service::AdmitStatus::kInvalid);

  // Reserved names: an export atomically renamed over the daemon's own
  // state files would destroy the admission log or the flock'd lock file.
  for (const char* name :
       {"lock", "requests.journal", "req-1.journal", "other.journal"}) {
    service::SubmitRequest reserved;
    reserved.points = SmallSweep();
    reserved.csv_name = name;
    EXPECT_EQ(client.Submit(reserved).status, service::AdmitStatus::kInvalid)
        << name;
  }

  // Deadlines whose nanosecond conversion would be undefined behavior.
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(), 1e300}) {
    service::SubmitRequest deadline;
    deadline.points = SmallSweep();
    deadline.deadline_seconds = bad;
    EXPECT_EQ(client.Submit(deadline).status, service::AdmitStatus::kInvalid)
        << bad;
  }

  EXPECT_EQ(svc.counters().rejected_invalid, 10u);
  svc.Stop(/*drain=*/false);
}

// Regression: client disconnect finalizes every queued request it owned,
// and with zero retention each finalization prunes the requests_ map
// mid-cancellation — this must not invalidate the iteration over the map
// (historically a use-after-erase crash).
TEST(SweepService, DisconnectCancelsQueuedUnderRetentionPressure) {
  const TempDir tmp;
  service::ServiceOptions options = MakeOptions(tmp);
  options.max_retained_results = 0;  // Prune terminal requests immediately.
  service::SweepService svc(std::move(options));
  svc.Start();

  {
    service::SweepClient client(svc.options().socket_path);
    // Occupy the executor so the follow-up submissions stay queued.
    service::SubmitRequest spin;
    spin.points = SpinSweep();
    ASSERT_EQ(client.Submit(spin).status, service::AdmitStatus::kAccepted);
    for (int i = 0; i < 200 && svc.queue_depth() != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(svc.queue_depth(), 0u);

    for (int i = 0; i < 3; ++i) {
      service::SubmitRequest req;
      req.points = SmallSweep();
      ASSERT_EQ(client.Submit(req).status, service::AdmitStatus::kAccepted);
    }
  }  // Disconnect: all four attached requests are orphaned at once.

  for (int i = 0; i < 500 && svc.counters().disconnect_cancels < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(svc.counters().disconnect_cancels, 4u);
  EXPECT_EQ(svc.queue_depth(), 0u);
  svc.Stop(/*drain=*/false);
}

TEST(SweepService, OverloadRejectsExplicitlyThenRecovers) {
  const TempDir tmp;
  service::ServiceOptions options = MakeOptions(tmp);
  options.max_queue = 1;  // One waiting slot behind the running request.
  service::SweepService svc(std::move(options));
  svc.Start();
  service::SweepClient client(svc.options().socket_path);

  // Occupy the executor with a request only cancellation can end, then
  // fill the single queue slot.
  service::SubmitRequest spin;
  spin.points = SpinSweep();
  spin.detach = true;
  const service::SubmitReply running = client.Submit(spin);
  ASSERT_EQ(running.status, service::AdmitStatus::kAccepted);
  // Wait until the executor actually picked it up so the queue is empty.
  for (int i = 0; i < 200 && svc.queue_depth() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(svc.queue_depth(), 0u);

  service::SubmitRequest queued;
  queued.points = SmallSweep();
  queued.detach = true;
  queued.csv_name = "queued.csv";
  const service::SubmitReply waiting = client.Submit(queued);
  ASSERT_EQ(waiting.status, service::AdmitStatus::kAccepted);

  // The queue is now full: further offered load is rejected, not buffered.
  service::SubmitRequest excess;
  excess.points = SmallSweep();
  const service::SubmitReply rejected = client.Submit(excess);
  EXPECT_EQ(rejected.status, service::AdmitStatus::kOverloaded);
  EXPECT_EQ(svc.counters().rejected_overload, 1u);

  // Shed the stuck request: the service must recover and accept again.
  const service::CancelReply cancelled = client.Cancel(running.request_id);
  EXPECT_TRUE(cancelled.cancelled);
  service::WaitRequest drain_wait;
  drain_wait.request_id = waiting.request_id;
  const service::WaitReply queued_done = client.Wait(drain_wait);
  EXPECT_EQ(queued_done.state, service::RequestState::kDone);

  service::SubmitRequest after;
  after.points = SmallSweep();
  after.detach = true;
  const service::SubmitReply accepted_again = client.Submit(after);
  EXPECT_EQ(accepted_again.status, service::AdmitStatus::kAccepted);

  // The cancelled spin must be reported as such.
  service::WaitRequest spin_wait;
  spin_wait.request_id = running.request_id;
  EXPECT_EQ(client.Wait(spin_wait).state, service::RequestState::kCancelled);

  svc.Stop(/*drain=*/false);
}

TEST(SweepService, DeadlineCancelsCooperatively) {
  const TempDir tmp;
  service::SweepService svc(MakeOptions(tmp));
  svc.Start();
  service::SweepClient client(svc.options().socket_path);

  service::SubmitRequest req;
  req.points = SpinSweep();
  req.deadline_seconds = 0.2;
  req.detach = true;
  const service::SubmitReply admitted = client.Submit(req);
  ASSERT_EQ(admitted.status, service::AdmitStatus::kAccepted);

  service::WaitRequest wait;
  wait.request_id = admitted.request_id;
  const service::WaitReply done = client.Wait(wait);
  EXPECT_EQ(done.state, service::RequestState::kDeadlineExceeded);
  EXPECT_EQ(svc.counters().deadline_exceeded, 1u);

  svc.Stop(/*drain=*/false);
}

TEST(SweepService, ClientDisconnectCancelsAttachedRequest) {
  const TempDir tmp;
  service::SweepService svc(MakeOptions(tmp));
  svc.Start();

  std::uint64_t id = 0;
  {
    // Attached (detach = false): the request's lifetime is tied to this
    // connection, which closes at scope exit with the sweep still spinning.
    service::SweepClient doomed(svc.options().socket_path);
    service::SubmitRequest req;
    req.points = SpinSweep();
    const service::SubmitReply admitted = doomed.Submit(req);
    ASSERT_EQ(admitted.status, service::AdmitStatus::kAccepted);
    id = admitted.request_id;
  }

  service::SweepClient observer(svc.options().socket_path);
  service::WaitRequest wait;
  wait.request_id = id;
  const service::WaitReply done = observer.Wait(wait);
  EXPECT_EQ(done.state, service::RequestState::kCancelled);
  EXPECT_GE(svc.counters().disconnect_cancels, 1u);

  svc.Stop(/*drain=*/false);
}

TEST(SweepService, SecondDaemonOnSameStateDirIsRefused) {
  const TempDir tmp;
  service::SweepService first(MakeOptions(tmp));
  first.Start();

  service::ServiceOptions second_options = MakeOptions(tmp);
  second_options.socket_path = tmp.File("other.sock");
  service::SweepService second(std::move(second_options));
  EXPECT_THROW(second.Start(), std::runtime_error);

  first.Stop(/*drain=*/false);
}

// --- Crash restart --------------------------------------------------------

TEST(SweepService, CrashRestartResumesToByteIdenticalExport) {
  const TempDir tmp;
  // A sweep long enough that the hard stop lands mid-run: 16 points of a
  // real kernel across all four cores.
  const auto program =
      std::make_shared<const isa::Program>(workloads::BubbleSort(60));
  std::vector<runtime::SweepPoint> points;
  for (const ProcessorKind kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    for (const int window : {8, 16, 32, 64}) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = window;
      p.program = program;
      p.workload = "sort";
      points.push_back(std::move(p));
    }
  }

  std::uint64_t id = 0;
  {
    service::SweepService svc(MakeOptions(tmp));
    svc.Start();
    service::SweepClient client(svc.options().socket_path);
    service::SubmitRequest req;
    req.points = points;
    req.detach = true;
    req.csv_name = "crash.csv";
    const service::SubmitReply admitted = client.Submit(req);
    ASSERT_EQ(admitted.status, service::AdmitStatus::kAccepted);
    id = admitted.request_id;
    // Let some — ideally not all — points complete, then "crash": a hard
    // stop writes no done record and journals no cancelled points, exactly
    // like a SIGKILL (minus the thread joins gtest needs).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    svc.Stop(/*drain=*/false);
  }

  {
    service::SweepService svc(MakeOptions(tmp));
    svc.Start();
    EXPECT_EQ(svc.counters().recovered, 1u);
    service::SweepClient client(svc.options().socket_path);
    service::WaitRequest wait;
    wait.request_id = id;
    wait.want_csv = true;
    const service::WaitReply done = client.Wait(wait);
    EXPECT_EQ(done.state, service::RequestState::kDone);
    EXPECT_EQ(done.ok_points + done.failed_points, points.size());

    // The headline property: the recovered export is byte-identical to a
    // serverless run of the same points.
    const std::string local = LocalCsv(points);
    EXPECT_EQ(done.csv_text, local);
    EXPECT_EQ(ReadFileText(tmp.File("state/crash.csv")), local);
    svc.Stop(/*drain=*/true);
  }
}

TEST(SweepService, DrainStopFinishesInFlightAndRequeuesOnRestart) {
  const TempDir tmp;
  std::uint64_t spin_id = 0;
  {
    service::ServiceOptions options = MakeOptions(tmp);
    options.drain_timeout_seconds = 0.3;  // Escalate quickly: spin never ends.
    service::SweepService svc(std::move(options));
    svc.Start();
    service::SweepClient client(svc.options().socket_path);
    service::SubmitRequest req;
    req.points = SpinSweep();
    req.detach = true;
    const service::SubmitReply admitted = client.Submit(req);
    ASSERT_EQ(admitted.status, service::AdmitStatus::kAccepted);
    spin_id = admitted.request_id;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // Drain: admissions stop, the spin gets its 0.3 s budget, then the
    // escalation cancels it — without a done record, so it survives.
    svc.Stop(/*drain=*/true);
  }
  {
    service::SweepService svc(MakeOptions(tmp));
    svc.Start();
    // The drained request is re-queued, not forgotten and not marked done.
    EXPECT_EQ(svc.counters().recovered, 1u);
    service::SweepClient client(svc.options().socket_path);
    const service::CancelReply cancelled = client.Cancel(spin_id);
    EXPECT_TRUE(cancelled.cancelled);
    service::WaitRequest wait;
    wait.request_id = spin_id;
    EXPECT_EQ(client.Wait(wait).state, service::RequestState::kCancelled);
    svc.Stop(/*drain=*/false);
  }
}

TEST(SweepService, StartupHealsCorruptRequestJournal) {
  const TempDir tmp;
  {
    service::SweepService svc(MakeOptions(tmp));
    svc.Start();
    service::SweepClient client(svc.options().socket_path);
    service::SubmitRequest req;
    req.points = SmallSweep();
    req.detach = true;
    const service::SubmitReply admitted = client.Submit(req);
    ASSERT_EQ(admitted.status, service::AdmitStatus::kAccepted);
    service::WaitRequest wait;
    wait.request_id = admitted.request_id;
    (void)client.Wait(wait);
    svc.Stop(/*drain=*/true);
  }

  // A crash mid-append leaves a torn frame at the journal tail.
  const std::string journal = tmp.File("state/requests.journal");
  {
    auto bytes = persist::ReadFileBytes(journal);
    const std::vector<std::uint8_t> garbage = {'U', 'J', 'N', 'L', 1, 2, 3};
    bytes.insert(bytes.end(), garbage.begin(), garbage.end());
    persist::AtomicWriteFile(journal, bytes);
  }

  {
    service::SweepService svc(MakeOptions(tmp));
    svc.Start();  // Must self-heal, not refuse to start or orphan appends.
    EXPECT_EQ(svc.counters().journal_repaired_bytes, 7u);
    // And the healed journal accepts (and persists) new submissions.
    service::SweepClient client(svc.options().socket_path);
    service::SubmitRequest req;
    req.points = SmallSweep();
    req.detach = true;
    const service::SubmitReply admitted = client.Submit(req);
    EXPECT_EQ(admitted.status, service::AdmitStatus::kAccepted);
    service::WaitRequest wait;
    wait.request_id = admitted.request_id;
    EXPECT_EQ(client.Wait(wait).state, service::RequestState::kDone);
    svc.Stop(/*drain=*/true);
  }
}

}  // namespace
}  // namespace ultra
