// Tests for the runtime layer: ParallelFor, the deterministic SweepRunner,
// CSV/JSON export, the shared FunctionalSimCache, and CoreConfig::Validate.
#include <atomic>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

// --- ParallelFor ---------------------------------------------------------

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> seen(kCount);
  runtime::ParallelFor(4, kCount, [&](std::size_t i) { ++seen[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  runtime::ParallelFor(4, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, RethrowsBodyException) {
  EXPECT_THROW(
      runtime::ParallelFor(4, 16,
                           [](std::size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
}

TEST(ParallelFor, SerialAndParallelAgree) {
  std::vector<int> serial(100), parallel(100);
  runtime::ParallelFor(1, serial.size(),
                       [&](std::size_t i) { serial[i] = int(i) * 3; });
  runtime::ParallelFor(4, parallel.size(),
                       [&](std::size_t i) { parallel[i] = int(i) * 3; });
  EXPECT_EQ(serial, parallel);
}

// --- SweepRunner ---------------------------------------------------------

std::vector<runtime::SweepPoint> SmallGrid() {
  const auto fib = std::make_shared<const isa::Program>(
      workloads::Fibonacci(10));
  const auto dot = std::make_shared<const isa::Program>(
      workloads::DotProduct(8));
  std::vector<runtime::SweepPoint> points;
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    for (const int window : {8, 32}) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = window;
      p.config.cluster_size = 4;
      p.config.mem.mode = memory::MemTimingMode::kMagic;
      p.program = kind == core::ProcessorKind::kHybrid ? dot : fib;
      p.workload = p.program == fib ? "fib(10)" : "dot(8)";
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(SweepRunner, OutcomesKeepSubmissionOrder) {
  const auto points = SmallGrid();
  const auto outcomes = runtime::SweepRunner({.num_threads = 4}).Run(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].kind, points[i].kind);
    EXPECT_EQ(outcomes[i].workload, points[i].workload);
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(outcomes[i].result.halted);
  }
}

TEST(SweepRunner, ExportIsIdenticalAtAnyThreadCount) {
  const auto points = SmallGrid();
  const auto one = runtime::SweepRunner({.num_threads = 1}).Run(points);
  const auto four = runtime::SweepRunner({.num_threads = 4}).Run(points);
  std::ostringstream csv1, csv4, json1, json4;
  runtime::WriteCsv(csv1, one);
  runtime::WriteCsv(csv4, four);
  runtime::WriteJson(json1, one);
  runtime::WriteJson(json4, four);
  EXPECT_EQ(csv1.str(), csv4.str());
  EXPECT_EQ(json1.str(), json4.str());
  EXPECT_NE(csv1.str().find("fib(10)"), std::string::npos);
}

TEST(SweepRunner, ArchitecturalStateCheckPassesOnCorrectCores) {
  const auto outcomes =
      runtime::SweepRunner(
          {.num_threads = 2, .check_architectural_state = true})
          .Run(SmallGrid());
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
}

TEST(SweepRunner, InvalidConfigFailsThePointNotTheSweep) {
  auto points = SmallGrid();
  points[1].config.window_size = 0;  // Validate() must reject this point.
  const auto outcomes = runtime::SweepRunner({.num_threads = 2}).Run(points);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("window_size"), std::string::npos);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder) {
  const runtime::SweepRunner runner({.num_threads = 4});
  const auto squares = runner.Map<std::size_t>(
      64, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

// --- FunctionalSimCache --------------------------------------------------

TEST(FunctionalSimCache, SecondRequestIsAHitOnTheSameObject) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(12);
  const auto a = cache.Get(program, isa::kDefaultLogicalRegisters);
  const auto b = cache.Get(program, isa::kDefaultLogicalRegisters);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // Cached: literally the same result object.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(a->halted);
}

TEST(FunctionalSimCache, KeysOnContentNotIdentity) {
  core::FunctionalSimCache cache;
  const auto a = cache.Get(workloads::Fibonacci(12), 32);
  const auto b = cache.Get(workloads::Fibonacci(12), 32);  // Fresh object.
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FunctionalSimCache, DistinguishesRegCountAndProgram) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(12);
  const auto a = cache.Get(program, 32);
  const auto b = cache.Get(program, 16);
  const auto c = cache.Get(workloads::DotProduct(8), 32);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(FunctionalSimCache, ClearDropsEntries) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(12);
  (void)cache.Get(program, 32);
  cache.Clear();
  (void)cache.Get(program, 32);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(FunctionalSimCache, ConcurrentGetsConverge) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(16);
  std::vector<std::shared_ptr<const core::FunctionalResult>> results(8);
  runtime::ParallelFor(8, results.size(), [&](std::size_t i) {
    results[i] = cache.Get(program, 32);
  });
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
}

// --- CoreConfig::Validate ------------------------------------------------

TEST(ValidateConfig, AcceptsDefaults) {
  EXPECT_NO_THROW(core::CoreConfig{}.Validate());
  EXPECT_NO_THROW(core::CoreConfig{}.Validate(/*for_hybrid=*/true));
}

TEST(ValidateConfig, RejectsDegenerateFields) {
  const auto expect_rejected = [](auto mutate) {
    core::CoreConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  };
  expect_rejected([](core::CoreConfig& c) { c.window_size = 0; });
  expect_rejected([](core::CoreConfig& c) { c.window_size = -4; });
  expect_rejected([](core::CoreConfig& c) { c.num_regs = 0; });
  expect_rejected([](core::CoreConfig& c) { c.max_cycles = 0; });
  expect_rejected([](core::CoreConfig& c) { c.num_alus = -1; });
  expect_rejected([](core::CoreConfig& c) { c.fetch_width = -1; });
  expect_rejected(
      [](core::CoreConfig& c) { c.pipeline_levels_per_stage = -1; });
}

TEST(ValidateConfig, HybridClusterSizeMustFitTheWindow) {
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 32;
  EXPECT_NO_THROW(cfg.Validate());  // Non-hybrid cores ignore cluster_size.
  EXPECT_THROW(cfg.Validate(/*for_hybrid=*/true), std::invalid_argument);
  cfg.cluster_size = 0;
  EXPECT_THROW(cfg.Validate(/*for_hybrid=*/true), std::invalid_argument);
  cfg.cluster_size = 16;
  EXPECT_NO_THROW(cfg.Validate(/*for_hybrid=*/true));
}

TEST(ValidateConfig, MakeProcessorRejectsBadConfigs) {
  core::CoreConfig cfg;
  cfg.window_size = 0;
  EXPECT_THROW(
      core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg),
      std::invalid_argument);
  cfg.window_size = 8;
  cfg.cluster_size = 64;
  EXPECT_THROW(core::MakeProcessor(core::ProcessorKind::kHybrid, cfg),
               std::invalid_argument);
  // The same cluster_size is fine for a non-hybrid core.
  EXPECT_NO_THROW(
      core::MakeProcessor(core::ProcessorKind::kUltrascalarII, cfg));
}

}  // namespace
}  // namespace ultra
