// Tests for the runtime layer: ParallelFor, the deterministic SweepRunner,
// CSV/JSON export, the shared FunctionalSimCache, and CoreConfig::Validate.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

// --- ParallelFor ---------------------------------------------------------

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> seen(kCount);
  runtime::ParallelFor(4, kCount, [&](std::size_t i) { ++seen[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(ParallelFor, ZeroCountIsANoop) {
  runtime::ParallelFor(4, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, RethrowsBodyException) {
  // ParallelForError derives from std::runtime_error, so callers that only
  // know "something threw" keep working.
  EXPECT_THROW(
      runtime::ParallelFor(4, 16,
                           [](std::size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
}

TEST(ParallelFor, AggregatesEveryFailureAcrossWorkers) {
  std::atomic<int> ran{0};
  try {
    runtime::ParallelFor(4, 16, [&](std::size_t i) {
      ++ran;
      if (i == 3 || i == 7 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelForError";
  } catch (const runtime::ParallelForError& e) {
    EXPECT_EQ(ran.load(), 16);  // Failures never abort the loop.
    ASSERT_EQ(e.failures().size(), 3u);
    EXPECT_EQ(e.failures()[0].index, 3u);
    EXPECT_EQ(e.failures()[1].index, 7u);
    EXPECT_EQ(e.failures()[2].index, 11u);
    EXPECT_EQ(e.failures()[1].message, "boom 7");
    EXPECT_NE(std::string(e.what()).find("3 iterations failed"),
              std::string::npos);
  }
}

TEST(ParallelFor, SerialPathAggregatesToo) {
  std::atomic<int> ran{0};
  try {
    runtime::ParallelFor(1, 8, [&](std::size_t i) {
      ++ran;
      if (i % 4 == 0) throw std::runtime_error("bad");
    });
    FAIL() << "expected ParallelForError";
  } catch (const runtime::ParallelForError& e) {
    EXPECT_EQ(ran.load(), 8);
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].index, 0u);
    EXPECT_EQ(e.failures()[1].index, 4u);
  }
}

TEST(ParallelFor, DescribeCallbackLabelsFailures) {
  try {
    runtime::ParallelFor(
        4, 8,
        [](std::size_t i) {
          if (i == 2 || i == 5) throw std::runtime_error("boom");
        },
        [](std::size_t i) {
          return "workload-" + std::to_string(i) + " (UltrascalarI)";
        });
    FAIL() << "expected ParallelForError";
  } catch (const runtime::ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].context, "workload-2 (UltrascalarI)");
    EXPECT_EQ(e.failures()[1].context, "workload-5 (UltrascalarI)");
    // what() names the point, not just the index.
    EXPECT_NE(std::string(e.what()).find("workload-2 (UltrascalarI)"),
              std::string::npos);
  }
}

TEST(ParallelFor, ThrowingDescribeNeverMasksTheFailure) {
  try {
    runtime::ParallelFor(
        2, 4, [](std::size_t i) { if (i == 1) throw std::runtime_error("x"); },
        [](std::size_t) -> std::string { throw std::runtime_error("label"); });
    FAIL() << "expected ParallelForError";
  } catch (const runtime::ParallelForError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].index, 1u);
    EXPECT_TRUE(e.failures()[0].context.empty());
  }
}

TEST(ParallelFor, SerialAndParallelAgree) {
  std::vector<int> serial(100), parallel(100);
  runtime::ParallelFor(1, serial.size(),
                       [&](std::size_t i) { serial[i] = int(i) * 3; });
  runtime::ParallelFor(4, parallel.size(),
                       [&](std::size_t i) { parallel[i] = int(i) * 3; });
  EXPECT_EQ(serial, parallel);
}

// --- SweepRunner ---------------------------------------------------------

std::vector<runtime::SweepPoint> SmallGrid() {
  const auto fib = std::make_shared<const isa::Program>(
      workloads::Fibonacci(10));
  const auto dot = std::make_shared<const isa::Program>(
      workloads::DotProduct(8));
  std::vector<runtime::SweepPoint> points;
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    for (const int window : {8, 32}) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = window;
      p.config.cluster_size = 4;
      p.config.mem.mode = memory::MemTimingMode::kMagic;
      p.program = kind == core::ProcessorKind::kHybrid ? dot : fib;
      p.workload = p.program == fib ? "fib(10)" : "dot(8)";
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(SweepRunner, OutcomesKeepSubmissionOrder) {
  const auto points = SmallGrid();
  const auto outcomes = runtime::SweepRunner({.num_threads = 4}).Run(points);
  ASSERT_EQ(outcomes.size(), points.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].index, i);
    EXPECT_EQ(outcomes[i].kind, points[i].kind);
    EXPECT_EQ(outcomes[i].workload, points[i].workload);
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_TRUE(outcomes[i].result.halted);
  }
}

TEST(SweepRunner, ExportIsIdenticalAtAnyThreadCount) {
  const auto points = SmallGrid();
  const auto one = runtime::SweepRunner({.num_threads = 1}).Run(points);
  const auto four = runtime::SweepRunner({.num_threads = 4}).Run(points);
  std::ostringstream csv1, csv4, json1, json4;
  runtime::WriteCsv(csv1, one);
  runtime::WriteCsv(csv4, four);
  runtime::WriteJson(json1, one);
  runtime::WriteJson(json4, four);
  EXPECT_EQ(csv1.str(), csv4.str());
  EXPECT_EQ(json1.str(), json4.str());
  EXPECT_NE(csv1.str().find("fib(10)"), std::string::npos);
}

TEST(SweepRunner, ArchitecturalStateCheckPassesOnCorrectCores) {
  const auto outcomes =
      runtime::SweepRunner(
          {.num_threads = 2, .check_architectural_state = true})
          .Run(SmallGrid());
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << o.error;
}

TEST(SweepRunner, InvalidConfigFailsThePointNotTheSweep) {
  auto points = SmallGrid();
  points[1].config.window_size = 0;  // Validate() must reject this point.
  const auto outcomes = runtime::SweepRunner({.num_threads = 2}).Run(points);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_NE(outcomes[1].error.find("window_size"), std::string::npos);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
}

TEST(SweepRunner, HardenedSweepQuarantinesHungThrowingAndMismatchedPoints) {
  const auto fib = std::make_shared<const isa::Program>(
      workloads::Fibonacci(10));
  const auto spin = std::make_shared<const isa::Program>(
      isa::AssembleOrDie("loop: jmp loop\n"));
  std::vector<runtime::SweepPoint> points(5);
  for (auto& p : points) {
    p.program = fib;
    p.workload = "fib(10)";
    p.config.mem.mode = memory::MemTimingMode::kMagic;
  }
  // Point 1 hangs: an infinite loop with an effectively unbounded cycle
  // budget, so only the deadline watchdog can end it.
  points[1].program = spin;
  points[1].workload = "spin";
  points[1].config.max_cycles = ~std::uint64_t{0};
  // Point 2 throws: Validate() rejects the config inside Run().
  points[2].config.window_size = 0;
  // Point 3 mismatches the oracle: too few cycles to reach halt.
  points[3].config.max_cycles = 4;

  runtime::SweepOptions opt;
  opt.num_threads = 2;
  opt.check_architectural_state = true;
  opt.point_deadline_seconds = 0.15;
  opt.max_attempts = 2;
  opt.retry_backoff_seconds = 0.001;
  const auto outcomes = runtime::SweepRunner(opt).Run(points);
  ASSERT_EQ(outcomes.size(), 5u);

  for (const std::size_t healthy : {std::size_t{0}, std::size_t{4}}) {
    EXPECT_TRUE(outcomes[healthy].ok) << outcomes[healthy].error;
    EXPECT_EQ(outcomes[healthy].attempts, 1);
    EXPECT_FALSE(outcomes[healthy].deadline_exceeded);
  }
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_TRUE(outcomes[1].deadline_exceeded);
  EXPECT_EQ(outcomes[1].attempts, 2);  // Deadline hits are retried.
  EXPECT_EQ(outcomes[1].attempt_errors.size(), 2u);
  EXPECT_NE(outcomes[1].error.find("deadline exceeded"), std::string::npos);
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_EQ(outcomes[2].attempts, 1);  // Invalid configs are not retried.
  EXPECT_NE(outcomes[2].error.find("window_size"), std::string::npos);
  EXPECT_FALSE(outcomes[3].ok);
  EXPECT_EQ(outcomes[3].attempts, 1);  // Oracle mismatches are not retried.
  EXPECT_NE(outcomes[3].error.find("functional reference"),
            std::string::npos);

  const auto bad = runtime::Quarantine(outcomes);
  ASSERT_EQ(bad.size(), 3u);
  EXPECT_EQ(bad[0]->index, 1u);
  EXPECT_EQ(bad[1]->index, 2u);
  EXPECT_EQ(bad[2]->index, 3u);

  std::ostringstream csv, json;
  runtime::WriteCsv(csv, outcomes);
  runtime::WriteJson(json, outcomes);
  EXPECT_NE(csv.str().find("# quarantine: 3 failed points"),
            std::string::npos);
  EXPECT_NE(csv.str().find("deadline exceeded"), std::string::npos);
  EXPECT_NE(json.str().find("\"quarantine\": ["), std::string::npos);
  EXPECT_NE(json.str().find("\"deadline_exceeded\": true"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"workload\": \"spin\""), std::string::npos);
}

TEST(SweepRunner, NullProgramFailsWithoutRetry) {
  std::vector<runtime::SweepPoint> points(1);
  points[0].workload = "null";
  runtime::SweepOptions opt;
  opt.num_threads = 1;
  opt.max_attempts = 3;
  opt.retry_backoff_seconds = 0.0;
  const auto outcomes = runtime::SweepRunner(opt).Run(points);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].attempts, 1);
  EXPECT_NE(outcomes[0].error.find("null program"), std::string::npos);
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder) {
  const runtime::SweepRunner runner({.num_threads = 4});
  const auto squares = runner.Map<std::size_t>(
      64, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

// --- FunctionalSimCache --------------------------------------------------

TEST(FunctionalSimCache, SecondRequestIsAHitOnTheSameObject) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(12);
  const auto a = cache.Get(program, isa::kDefaultLogicalRegisters);
  const auto b = cache.Get(program, isa::kDefaultLogicalRegisters);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // Cached: literally the same result object.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(a->halted);
}

TEST(FunctionalSimCache, KeysOnContentNotIdentity) {
  core::FunctionalSimCache cache;
  const auto a = cache.Get(workloads::Fibonacci(12), 32);
  const auto b = cache.Get(workloads::Fibonacci(12), 32);  // Fresh object.
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FunctionalSimCache, DistinguishesRegCountAndProgram) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(12);
  const auto a = cache.Get(program, 32);
  const auto b = cache.Get(program, 16);
  const auto c = cache.Get(workloads::DotProduct(8), 32);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(FunctionalSimCache, ClearDropsEntries) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(12);
  (void)cache.Get(program, 32);
  cache.Clear();
  (void)cache.Get(program, 32);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(FunctionalSimCache, EvictsLeastRecentlyUsedBeyondTheBound) {
  core::FunctionalSimCache cache;
  cache.SetMaxEntries(2);
  const auto a = cache.Get(workloads::Fibonacci(5), 32);
  const auto b = cache.Get(workloads::Fibonacci(6), 32);
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.Get(workloads::Fibonacci(5), 32);  // Touch A: B becomes LRU.
  (void)cache.Get(workloads::Fibonacci(7), 32);  // Evicts B, keeps A.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto a2 = cache.Get(workloads::Fibonacci(5), 32);
  EXPECT_EQ(a2.get(), a.get());  // A survived the eviction.
  EXPECT_EQ(cache.stats().misses, 3u);
  const auto b2 = cache.Get(workloads::Fibonacci(6), 32);  // Re-simulated.
  EXPECT_NE(b2.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(FunctionalSimCache, ShrinkingTheBoundEvictsImmediately) {
  core::FunctionalSimCache cache;
  (void)cache.Get(workloads::Fibonacci(5), 32);
  (void)cache.Get(workloads::Fibonacci(6), 32);
  (void)cache.Get(workloads::Fibonacci(7), 32);
  EXPECT_EQ(cache.size(), 3u);
  cache.SetMaxEntries(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  // The survivor is the most recently used entry.
  (void)cache.Get(workloads::Fibonacci(7), 32);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FunctionalSimCache, BoundComesFromTheEnvironment) {
  ::setenv("ULTRA_FNSIM_CACHE_ENTRIES", "3", 1);
  core::FunctionalSimCache small;
  EXPECT_EQ(small.max_entries(), 3u);
  ::unsetenv("ULTRA_FNSIM_CACHE_ENTRIES");
  core::FunctionalSimCache fresh;
  EXPECT_EQ(fresh.max_entries(),
            core::FunctionalSimCache::kDefaultMaxEntries);
}

TEST(FunctionalSimCache, ConcurrentGetsConverge) {
  core::FunctionalSimCache cache;
  const auto program = workloads::Fibonacci(16);
  std::vector<std::shared_ptr<const core::FunctionalResult>> results(8);
  runtime::ParallelFor(8, results.size(), [&](std::size_t i) {
    results[i] = cache.Get(program, 32);
  });
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
}

// --- CoreConfig::Validate ------------------------------------------------

TEST(ValidateConfig, AcceptsDefaults) {
  EXPECT_NO_THROW(core::CoreConfig{}.Validate());
  EXPECT_NO_THROW(core::CoreConfig{}.Validate(/*for_hybrid=*/true));
}

TEST(ValidateConfig, RejectsDegenerateFields) {
  const auto expect_rejected = [](auto mutate) {
    core::CoreConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  };
  expect_rejected([](core::CoreConfig& c) { c.window_size = 0; });
  expect_rejected([](core::CoreConfig& c) { c.window_size = -4; });
  expect_rejected([](core::CoreConfig& c) { c.num_regs = 0; });
  expect_rejected([](core::CoreConfig& c) { c.max_cycles = 0; });
  expect_rejected([](core::CoreConfig& c) { c.num_alus = -1; });
  expect_rejected([](core::CoreConfig& c) { c.fetch_width = -1; });
  expect_rejected(
      [](core::CoreConfig& c) { c.pipeline_levels_per_stage = -1; });
}

TEST(ValidateConfig, HybridClusterSizeMustFitTheWindow) {
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 32;
  EXPECT_NO_THROW(cfg.Validate());  // Non-hybrid cores ignore cluster_size.
  EXPECT_THROW(cfg.Validate(/*for_hybrid=*/true), std::invalid_argument);
  cfg.cluster_size = 0;
  EXPECT_THROW(cfg.Validate(/*for_hybrid=*/true), std::invalid_argument);
  cfg.cluster_size = 16;
  EXPECT_NO_THROW(cfg.Validate(/*for_hybrid=*/true));
}

TEST(ValidateConfig, RejectsDegenerateHierarchyGeometry) {
  const auto expect_rejected = [](auto mutate) {
    core::CoreConfig cfg;
    cfg.mem.hierarchy.l1d.enabled = true;
    mutate(cfg);
    EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  };
  expect_rejected([](core::CoreConfig& c) { c.mem.hierarchy.l1d.sets = 0; });
  expect_rejected([](core::CoreConfig& c) { c.mem.hierarchy.l1d.sets = 3; });
  expect_rejected([](core::CoreConfig& c) { c.mem.hierarchy.l1d.ways = 0; });
  expect_rejected(
      [](core::CoreConfig& c) { c.mem.hierarchy.l1d.block_bytes = 2; });
  expect_rejected(
      [](core::CoreConfig& c) { c.mem.hierarchy.l1d.block_bytes = 48; });
  expect_rejected(
      [](core::CoreConfig& c) { c.mem.hierarchy.l1d.hit_latency = 0; });
  expect_rejected(
      [](core::CoreConfig& c) { c.mem.hierarchy.l1d.miss_latency = 0; });
  expect_rejected([](core::CoreConfig& c) {
    c.mem.hierarchy.l1i.enabled = true;
    c.mem.hierarchy.l1i.sets = 7;
  });
  // Geometry of a disabled level is irrelevant and must NOT be rejected.
  {
    core::CoreConfig cfg;
    cfg.mem.hierarchy.l1i.sets = 7;
    EXPECT_NO_THROW(cfg.Validate());
  }
  expect_rejected(
      [](core::CoreConfig& c) { c.mem.hierarchy.prefetch.depth = -1; });
  expect_rejected([](core::CoreConfig& c) {
    c.mem.hierarchy.prefetch.depth = 1;
    c.mem.hierarchy.prefetch.table_entries = 0;
  });
  // Prefetching needs a data-side level to fill.
  {
    core::CoreConfig cfg;
    cfg.mem.hierarchy.prefetch.depth = 2;
    EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  }
  // The hierarchy and the per-cluster caches are mutually exclusive
  // locality models.
  {
    core::CoreConfig cfg;
    cfg.mem.hierarchy.l1d.enabled = true;
    cfg.mem.cluster_cache_leaves = 4;
    EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  }
  // A fully-specified valid hierarchy passes.
  {
    core::CoreConfig cfg;
    cfg.mem.hierarchy.l1i.enabled = true;
    cfg.mem.hierarchy.l1d.enabled = true;
    cfg.mem.hierarchy.l2.enabled = true;
    cfg.mem.hierarchy.prefetch.depth = 4;
    EXPECT_NO_THROW(cfg.Validate());
  }
}

TEST(ValidateConfig, MakeProcessorRejectsBadConfigs) {
  core::CoreConfig cfg;
  cfg.window_size = 0;
  EXPECT_THROW(
      core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg),
      std::invalid_argument);
  cfg.window_size = 8;
  cfg.cluster_size = 64;
  EXPECT_THROW(core::MakeProcessor(core::ProcessorKind::kHybrid, cfg),
               std::invalid_argument);
  // The same cluster_size is fine for a non-hybrid core.
  EXPECT_NO_THROW(
      core::MakeProcessor(core::ProcessorKind::kUltrascalarII, cfg));
}

}  // namespace
}  // namespace ultra
