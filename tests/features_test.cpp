// Tests for the paper's Section 7 extension features: shared ALUs with the
// prioritized prefix scheduler (Ultrascalar Memo 2) and memory renaming /
// store-to-load forwarding.
#include <gtest/gtest.h>

#include <random>

#include "core/core.hpp"
#include "datapath/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using core::CoreConfig;
using core::ProcessorKind;

CoreConfig BaseConfig() {
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  return cfg;
}

core::RunResult RunProc(ProcessorKind kind, const isa::Program& program,
                        const CoreConfig& cfg) {
  auto proc = core::MakeProcessor(kind, cfg);
  auto result = proc->Run(program);
  EXPECT_TRUE(result.halted) << core::ProcessorKindName(kind);
  return result;
}

void ExpectArchMatch(const isa::Program& program,
                     const core::RunResult& result) {
  core::FunctionalSimulator fn;
  const auto ref = fn.Run(program);
  for (std::size_t r = 0; r < ref.regs.size(); ++r) {
    ASSERT_EQ(result.regs[r], ref.regs[r]) << "r" << r;
  }
  EXPECT_EQ(result.committed, ref.instructions);
}

// --- The scheduler circuit -----------------------------------------------------

TEST(AluScheduler, GrantsOldestFirst) {
  const datapath::AluScheduler sched(8);
  const std::vector<std::uint8_t> requests = {1, 1, 0, 1, 1, 0, 1, 1};
  // Oldest = 4: program order is 4,5,6,7,0,1,2,3. Two ALUs go to the two
  // oldest requesters: stations 4 and 6.
  const auto grants = sched.Grant(requests, 2, /*oldest=*/4);
  EXPECT_TRUE(grants[4]);
  EXPECT_TRUE(grants[6]);
  EXPECT_FALSE(grants[7]);
  EXPECT_FALSE(grants[0]);
  EXPECT_FALSE(grants[1]);
  EXPECT_FALSE(grants[3]);
}

TEST(AluScheduler, GrantsEverythingWhenAlusAreAmple) {
  const datapath::AluScheduler sched(8);
  const std::vector<std::uint8_t> requests = {1, 1, 1, 1, 1, 1, 1, 1};
  const auto grants = sched.Grant(requests, 8, 3);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(grants[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(AluScheduler, GrantsNothingWhenNoAlusFree) {
  const datapath::AluScheduler sched(4);
  const std::vector<std::uint8_t> requests = {1, 1, 1, 1};
  const auto grants = sched.Grant(requests, 0, 0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(grants[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(AluScheduler, MatchesAcyclicReferenceInProgramOrder) {
  std::mt19937 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 24);
    const datapath::AluScheduler sched(n);
    std::vector<std::uint8_t> requests(static_cast<std::size_t>(n));
    for (auto& r : requests) r = rng() % 2;
    const int oldest = static_cast<int>(rng() % static_cast<unsigned>(n));
    const int available = static_cast<int>(rng() % static_cast<unsigned>(n + 1));
    const auto grants = sched.Grant(requests, available, oldest);
    // Reference: walk program order, grant the first `available` requests.
    std::vector<std::uint8_t> in_order(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      in_order[static_cast<std::size_t>(k)] =
          requests[static_cast<std::size_t>((oldest + k) % n)];
    }
    const auto ref = datapath::AluScheduler::GrantAcyclic(in_order, available);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(grants[static_cast<std::size_t>((oldest + k) % n)] != 0,
                ref[static_cast<std::size_t>(k)] != 0)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(AluScheduler, PrefixCountDepthIsLogarithmic) {
  const std::vector<std::uint8_t> requests(1024, 1);
  const datapath::AluScheduler tree(1024, datapath::PrefixImpl::kTree);
  const datapath::AluScheduler ring(1024, datapath::PrefixImpl::kRing);
  EXPECT_LE(tree.MeasureGateDepth(requests, 0), 80);
  EXPECT_GE(ring.MeasureGateDepth(requests, 0), 1023);
}

// --- Shared ALUs in the cores -----------------------------------------------------

class SharedAlus : public testing::TestWithParam<int> {};

TEST_P(SharedAlus, ArchitecturallyCorrectEverywhere) {
  auto cfg = BaseConfig();
  cfg.num_alus = GetParam();
  const auto program = workloads::BubbleSort(10);
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    ExpectArchMatch(program, RunProc(kind, program, cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, SharedAlus, testing::Values(1, 2, 4, 16),
                         [](const auto& info) {
                           return "alus" + std::to_string(info.param);
                         });

TEST(SharedAlusBehavior, MoreAlusNeverHurt) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 256, .ilp = 8});
  auto cfg = BaseConfig();
  std::uint64_t last = ~std::uint64_t{0};
  for (const int k : {1, 2, 4, 8, 16}) {
    cfg.num_alus = k;
    const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
    EXPECT_LE(result.cycles, last) << k << " ALUs";
    last = result.cycles;
  }
}

TEST(SharedAlusBehavior, SingleAluSerializesAluOps) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 128, .ilp = 8});
  auto cfg = BaseConfig();
  cfg.num_alus = 1;
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  // 128 + 8 setup ALU ops through one ALU: at least one cycle each.
  EXPECT_GE(result.cycles, 136u);
}

TEST(SharedAlusBehavior, IpcTracksMinOfIlpAndAlus) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 512, .ilp = 8});
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  cfg.num_alus = 4;
  const auto result = RunProc(ProcessorKind::kIdeal, program, cfg);
  EXPECT_GT(result.Ipc(), 3.0);
  EXPECT_LT(result.Ipc(), 4.6);
}

TEST(SharedAlusBehavior, UltrascalarIStillMatchesIdealCycleForCycle) {
  // The scheduling policy (oldest-first, k ALUs) is identical, so the
  // timing-equivalence property must survive ALU sharing.
  const auto program = workloads::Fibonacci(24);
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  cfg.num_alus = 3;
  const auto ideal = RunProc(ProcessorKind::kIdeal, program, cfg);
  const auto usi = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_EQ(usi.cycles, ideal.cycles);
  ASSERT_EQ(usi.timeline.size(), ideal.timeline.size());
  for (std::size_t k = 0; k < ideal.timeline.size(); ++k) {
    ASSERT_EQ(usi.timeline[k].issue_cycle, ideal.timeline[k].issue_cycle)
        << "instruction " << k;
  }
}

TEST(SharedAlusBehavior, SixteenAlusNearlyMatchUnlimitedOnFigure3) {
  // The paper's Section 7 sizing: "a hybrid Ultrascalar with a window-size
  // of 128 and 16 shared ALUs ... should fit easily within a chip 1cm on a
  // side" -- 16 ALUs must cost almost nothing on realistic ILP.
  const auto program = workloads::Figure3Example();
  auto cfg = BaseConfig();
  cfg.window_size = 128;
  cfg.cluster_size = 32;
  cfg.num_alus = 16;
  const auto shared = RunProc(ProcessorKind::kHybrid, program, cfg);
  cfg.num_alus = 0;
  const auto unlimited = RunProc(ProcessorKind::kHybrid, program, cfg);
  EXPECT_EQ(shared.cycles, unlimited.cycles);
}

// --- Store-to-load forwarding -------------------------------------------------------

TEST(Forwarding, ResolveLoadForwardingLogic) {
  using core::MemWindowEntry;
  std::vector<MemWindowEntry> w(4);
  // [0] store to 100, data ready; [1] store to 200, data NOT ready;
  // [2] load from 100; [3] load from 200.
  w[0] = {.is_store = true, .addr_known = true, .addr = 100,
          .data_ready = true, .data = 7};
  w[1] = {.is_store = true, .addr_known = true, .addr = 200};
  w[2] = {.is_load = true, .addr_known = true, .addr = 100};
  w[3] = {.is_load = true, .addr_known = true, .addr = 200};
  const auto d2 = core::ResolveLoadForwarding(w, 2);
  EXPECT_TRUE(d2.can_proceed);
  EXPECT_TRUE(d2.forward);
  EXPECT_EQ(d2.value, 7u);
  const auto d3 = core::ResolveLoadForwarding(w, 3);
  EXPECT_FALSE(d3.can_proceed);  // Matching store's data not ready.
}

TEST(Forwarding, UnknownStoreAddressBlocks) {
  using core::MemWindowEntry;
  std::vector<MemWindowEntry> w(2);
  w[0] = {.is_store = true, .addr_known = false};
  w[1] = {.is_load = true, .addr_known = true, .addr = 100};
  const auto d = core::ResolveLoadForwarding(w, 1);
  EXPECT_FALSE(d.can_proceed);
}

TEST(Forwarding, DisambiguatedLoadGoesToMemory) {
  using core::MemWindowEntry;
  std::vector<MemWindowEntry> w(2);
  w[0] = {.is_store = true, .addr_known = true, .addr = 300,
          .data_ready = false};
  w[1] = {.is_load = true, .addr_known = true, .addr = 100};
  const auto d = core::ResolveLoadForwarding(w, 1);
  EXPECT_TRUE(d.can_proceed);  // Different address: no need to wait.
  EXPECT_FALSE(d.forward);
}

class ForwardingCores : public testing::TestWithParam<ProcessorKind> {};

TEST_P(ForwardingCores, ArchitecturallyCorrectOnMemoryKernels) {
  auto cfg = BaseConfig();
  cfg.store_forwarding = true;
  for (const auto& program :
       {workloads::MemCopy(24), workloads::BubbleSort(10),
        workloads::IndirectSum(16),
        isa::AssembleOrDie(R"(
          li r1, 64
          li r2, 5
          st r2, 0(r1)
          ld r3, 0(r1)      # Forwarded from the store above.
          addi r3, r3, 1
          st r3, 0(r1)
          ld r4, 0(r1)      # Forwarded again.
          halt
        )")}) {
    ExpectArchMatch(program, RunProc(GetParam(), program, cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ForwardingCores,
    testing::Values(ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
                    ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid),
    [](const auto& info) {
      return std::string(core::ProcessorKindName(info.param));
    });

TEST(ForwardingBehavior, ForwardedLoadsSkipMemory) {
  const auto program = isa::AssembleOrDie(R"(
    li r1, 64
    li r2, 5
    st r2, 0(r1)
    ld r3, 0(r1)
    ld r4, 0(r1)
    halt
  )");
  auto cfg = BaseConfig();
  cfg.store_forwarding = true;
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_EQ(result.stats.forwarded_loads, 2u);
  EXPECT_EQ(result.stats.load_count, 0u);  // No memory traffic for loads.
  EXPECT_EQ(result.regs[3], 5u);
  EXPECT_EQ(result.regs[4], 5u);
}

TEST(ForwardingBehavior, ReducesMemoryTrafficOnStoreHeavyCode) {
  const auto program = workloads::BubbleSort(12);
  auto cfg = BaseConfig();
  // Oracle prediction isolates the renaming effect: with speculation, the
  // earlier-issuing wrong-path loads can otherwise add traffic back.
  cfg.predictor = core::PredictorKind::kOracle;
  const auto plain = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.store_forwarding = true;
  const auto fwd = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_GT(fwd.stats.forwarded_loads, 0u);
  EXPECT_LT(fwd.stats.load_count, plain.stats.load_count);
  EXPECT_EQ(fwd.stats.load_count + fwd.stats.forwarded_loads,
            plain.stats.load_count);
}

TEST(ForwardingBehavior, SpeedsUpStoreLoadChainsUnderTightBandwidth) {
  // The paper's motivation: "with the right caching and renaming protocols
  // ... a processor could require substantially reduced memory bandwidth".
  const auto program = workloads::BubbleSort(12);
  auto cfg = BaseConfig();
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kConstant;
  const auto plain = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.store_forwarding = true;
  const auto fwd = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_LT(fwd.cycles, plain.cycles);
  ExpectArchMatch(program, fwd);
}

TEST(ForwardingBehavior, EquivalenceUsiIdealSurvivesForwarding) {
  const auto program = workloads::MemCopy(32);
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  cfg.store_forwarding = true;
  const auto ideal = RunProc(ProcessorKind::kIdeal, program, cfg);
  const auto usi = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_EQ(usi.cycles, ideal.cycles);
}

TEST(ForwardingBehavior, RandomProgramsStayCorrect) {
  for (unsigned seed = 300; seed < 308; ++seed) {
    const auto program = workloads::RandomMix({.num_instructions = 150,
                                               .load_fraction = 0.25,
                                               .store_fraction = 0.25,
                                               .memory_words = 8,
                                               .seed = seed});
    auto cfg = BaseConfig();
    cfg.store_forwarding = true;
    for (const auto kind :
         {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
          ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
      SCOPED_TRACE(core::ProcessorKindName(kind));
      ExpectArchMatch(program, RunProc(kind, program, cfg));
    }
  }
}

TEST(ForwardingBehavior, CombinesWithSharedAlus) {
  const auto program = workloads::BubbleSort(10);
  auto cfg = BaseConfig();
  cfg.store_forwarding = true;
  cfg.num_alus = 2;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    ExpectArchMatch(program, RunProc(kind, program, cfg));
  }
}

// --- Pipelined datapath (Section 7) --------------------------------------------

class PipelinedDatapath : public testing::TestWithParam<int> {};

TEST_P(PipelinedDatapath, ArchitecturallyCorrect) {
  auto cfg = BaseConfig();
  cfg.pipeline_levels_per_stage = GetParam();
  for (const auto& program :
       {workloads::Fibonacci(20), workloads::BubbleSort(8),
        workloads::DependencyChains({.num_instructions = 128, .ilp = 8}),
        workloads::BranchStorm(24)}) {
    ExpectArchMatch(program,
                    RunProc(ProcessorKind::kUltrascalarI, program, cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, PipelinedDatapath,
                         testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST(PipelinedBehavior, NeverFasterInCyclesThanSingleCycleDatapath) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 256, .ilp = 16});
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  const auto base = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  for (const int s : {1, 2, 4, 8}) {
    cfg.pipeline_levels_per_stage = s;
    const auto piped = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
    EXPECT_GE(piped.cycles, base.cycles) << "s=" << s;
  }
}

TEST(PipelinedBehavior, DeeperPipelinesCostMoreCyclesOnScatteredCode) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 256, .ilp = 16});
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  cfg.pipeline_levels_per_stage = 8;
  const auto shallow = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.pipeline_levels_per_stage = 1;
  const auto deep = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_GT(deep.cycles, shallow.cycles);
}

TEST(PipelinedBehavior, LocalChainsBarelyPayAnything) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 192, .ilp = 1});
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  const auto base = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.pipeline_levels_per_stage = 2;
  const auto piped = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  // "Half of the communications paths from one station to its successor
  // are completely local": the serial chain's cycle count is unchanged.
  EXPECT_LE(piped.cycles, base.cycles + base.cycles / 10);
}

}  // namespace
}  // namespace ultra
