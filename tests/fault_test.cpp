// Fault-injection and self-checking datapath tests (tier1).
//
// The contract under test (docs/robustness.md): with datapath_eval =
// kChecked and any seeded FaultPlan, every injected corruption is either
// masked or detected-and-resynced, so the final architectural state still
// matches the functional oracle on all three scalable cores.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "core/core.hpp"
#include "fault/fault.hpp"

namespace ultra {
namespace {

using core::CoreConfig;
using core::DatapathEval;
using core::ProcessorKind;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

// A loop long enough (hundreds of cycles) that mid-run faults land while
// the window is busy, exercising loads, stores, multiplies, and branches.
constexpr const char* kLoopSource = R"(
  li r1, 0          # accumulator
  li r2, 0          # i
  li r3, 120        # iteration count
loop:
  addi r2, r2, 1
  mul r4, r2, r2
  add r1, r1, r4
  st r1, 0(r2)
  ld r5, 0(r2)
  add r1, r1, r5
  blt r2, r3, loop
  halt
)";

isa::Program LoopProgram() { return isa::AssembleOrDie(kLoopSource); }

CoreConfig BaseConfig() {
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  return cfg;
}

core::RunResult RunOn(ProcessorKind kind, const isa::Program& program,
                      const CoreConfig& cfg) {
  return core::MakeProcessor(kind, cfg)->Run(program);
}

void ExpectMatchesFunctional(const isa::Program& program,
                             const core::RunResult& result, int num_regs) {
  core::FunctionalSimulator fn(num_regs);
  const auto ref = fn.Run(program);
  ASSERT_TRUE(ref.halted);
  EXPECT_EQ(result.committed, ref.instructions);
  ASSERT_EQ(result.regs.size(), ref.regs.size());
  for (std::size_t r = 0; r < ref.regs.size(); ++r) {
    EXPECT_EQ(result.regs[r], ref.regs[r]) << "register r" << r;
  }
  EXPECT_EQ(result.memory, ref.memory.Snapshot());
}

// --- FaultPlan -----------------------------------------------------------

TEST(FaultPlan, RandomIsDeterministicAndCycleSorted) {
  const auto a = FaultPlan::Random(42, 0.1, 500);
  const auto b = FaultPlan::Random(42, 0.1, 500);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
    if (i > 0) {
      EXPECT_LE(a.events()[i - 1].cycle, a.events()[i].cycle);
    }
  }
  const auto c = FaultPlan::Random(43, 0.1, 500);
  EXPECT_FALSE(a.size() == c.size() &&
               std::equal(a.events().begin(), a.events().end(),
                          c.events().begin()));
}

TEST(FaultPlan, KindFilterRestrictsDraws) {
  constexpr std::array kinds = {FaultKind::kCorruptValue};
  const auto plan = FaultPlan::Random(7, 0.2, 400, kinds);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.kind, FaultKind::kCorruptValue);
  }
}

TEST(FaultPlan, ExplicitEventsAreStableSortedByCycle) {
  FaultPlan plan({{30, FaultKind::kFlipReady, 1, 2, 0},
                  {10, FaultKind::kCorruptValue, 0, 0, 5},
                  {30, FaultKind::kDropDelivery, 3, 1, 0}});
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].cycle, 10u);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kFlipReady);  // Stable order.
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kDropDelivery);
}

// --- Configuration validation --------------------------------------------

TEST(FaultConfig, FaultPlanRejectedUnderFullRecompute) {
  CoreConfig cfg = BaseConfig();
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan::Random(1, 0.05, 100));
  cfg.datapath_eval = DatapathEval::kFullRecompute;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.datapath_eval = DatapathEval::kChecked;
  EXPECT_NO_THROW(cfg.Validate());
  cfg.datapath_eval = DatapathEval::kIncremental;
  EXPECT_NO_THROW(cfg.Validate());
}

TEST(FaultConfig, CheckedModeNeedsAPositiveStride) {
  CoreConfig cfg = BaseConfig();
  cfg.datapath_eval = DatapathEval::kChecked;
  cfg.checker_stride = 0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
  cfg.checker_stride = 1;
  EXPECT_NO_THROW(cfg.Validate());
}

// --- Checked-mode behavior on the three scalable cores -------------------

class ScalableCores : public testing::TestWithParam<ProcessorKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllScalable, ScalableCores,
    testing::Values(ProcessorKind::kUltrascalarI,
                    ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid),
    [](const auto& info) {
      return std::string(core::ProcessorKindName(info.param));
    });

TEST_P(ScalableCores, CheckedModeIsANoopOnCleanRuns) {
  const auto program = LoopProgram();
  CoreConfig cfg = BaseConfig();
  const auto plain = RunOn(GetParam(), program, cfg);
  cfg.datapath_eval = DatapathEval::kChecked;
  cfg.checker_stride = 32;
  const auto checked = RunOn(GetParam(), program, cfg);
  EXPECT_TRUE(checked.halted);
  EXPECT_EQ(checked.cycles, plain.cycles);
  EXPECT_EQ(checked.committed, plain.committed);
  EXPECT_EQ(checked.regs, plain.regs);
  EXPECT_GT(checked.stats.checker_checks(), 0u);
  EXPECT_EQ(checked.stats.divergences_detected(), 0u);
  EXPECT_EQ(checked.stats.checker_resyncs(), 0u);
  EXPECT_EQ(checked.stats.faults_injected(), 0u);
}

TEST_P(ScalableCores, EveryFaultKindIsMaskedOrRepairedUnderCheckedMode) {
  const auto program = LoopProgram();
  CoreConfig cfg = BaseConfig();
  cfg.datapath_eval = DatapathEval::kChecked;
  cfg.checker_stride = 16;
  cfg.fault_plan =
      std::make_shared<const FaultPlan>(FaultPlan::Random(7, 0.05, 300));
  const auto result = RunOn(GetParam(), program, cfg);
  EXPECT_TRUE(result.halted);
  EXPECT_GT(result.stats.faults_injected(), 0u);
  ExpectMatchesFunctional(program, result, cfg.num_regs);
}

TEST_P(ScalableCores, ValueCorruptionIsDetectedAndResynced) {
  constexpr std::array kinds = {FaultKind::kCorruptValue};
  const auto program = LoopProgram();
  CoreConfig cfg = BaseConfig();
  cfg.datapath_eval = DatapathEval::kChecked;
  cfg.checker_stride = 64;  // Detection must come from the eager check.
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan::Random(11, 0.1, 200, kinds));
  const auto result = RunOn(GetParam(), program, cfg);
  EXPECT_TRUE(result.halted);
  EXPECT_GT(result.stats.faults_injected(), 0u);
  // An XORed delivery always differs from the recomputed truth, so every
  // staged corruption on a live cycle must surface as a divergence.
  EXPECT_GT(result.stats.divergences_detected(), 0u);
  EXPECT_GT(result.stats.checker_resyncs(), 0u);
  ExpectMatchesFunctional(program, result, cfg.num_regs);
}

TEST_P(ScalableCores, DroppedDeliveriesAreRepairedByThePeriodicCheck) {
  constexpr std::array kinds = {FaultKind::kDropDelivery};
  const auto program = LoopProgram();
  CoreConfig cfg = BaseConfig();
  cfg.datapath_eval = DatapathEval::kChecked;
  cfg.checker_stride = 8;  // A dropped delivery stalls at most 8 cycles.
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan::Random(23, 0.05, 300, kinds));
  const auto result = RunOn(GetParam(), program, cfg);
  EXPECT_TRUE(result.halted);
  EXPECT_GT(result.stats.faults_injected(), 0u);
  ExpectMatchesFunctional(program, result, cfg.num_regs);
}

TEST_P(ScalableCores, WrongPathBurstSquashesAndRecommitsCorrectly) {
  // Force the *oldest* window entry mispredicted five times mid-run: each
  // burst squashes every younger in-flight instruction and redirects
  // fetch, so the run recommits a correct tail afterwards.
  std::vector<FaultEvent> events;
  for (const std::uint64_t cycle : {20u, 35u, 50u, 65u, 80u}) {
    events.push_back({cycle, FaultKind::kForceMispredict, 0, 0, 0});
  }
  const auto program = LoopProgram();
  CoreConfig cfg = BaseConfig();
  cfg.fault_plan = std::make_shared<const FaultPlan>(FaultPlan(events));
  const auto result = RunOn(GetParam(), program, cfg);
  EXPECT_TRUE(result.halted);
  EXPECT_GT(result.stats.faults_injected(), 0u);
  EXPECT_GT(result.stats.squashes_under_fault(), 0u);
  ExpectMatchesFunctional(program, result, cfg.num_regs);
}

TEST_P(ScalableCores, StallsOnlyDelayExecution) {
  constexpr std::array kinds = {FaultKind::kStallStation};
  const auto program = LoopProgram();
  CoreConfig cfg = BaseConfig();
  cfg.fault_plan = std::make_shared<const FaultPlan>(
      FaultPlan::Random(31, 0.1, 300, kinds));
  const auto baseline = RunOn(GetParam(), program, BaseConfig());
  const auto result = RunOn(GetParam(), program, cfg);
  EXPECT_TRUE(result.halted);
  EXPECT_GT(result.stats.faults_injected(), 0u);
  EXPECT_GE(result.cycles, baseline.cycles);
  ExpectMatchesFunctional(program, result, cfg.num_regs);
}

}  // namespace
}  // namespace ultra
