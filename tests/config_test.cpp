// Configuration-space tests: non-default register counts, latency
// overrides, fetch-width limits, timeout behaviour, and timing-record
// invariants.
#include <gtest/gtest.h>

#include "core/core.hpp"
#include "workloads/workloads.hpp"

namespace ultra::core {
namespace {

RunResult RunProc(ProcessorKind kind, const isa::Program& program,
                  const CoreConfig& cfg) {
  auto proc = MakeProcessor(kind, cfg);
  return proc->Run(program);
}

// --- Register-count scaling (L is the paper's central parameter) ---------------

class RegisterCount : public testing::TestWithParam<int> {};

TEST_P(RegisterCount, AllProcessorsCorrectWithLRegisters) {
  const int L = GetParam();
  const auto program = workloads::RandomMix(
      {.num_instructions = 120, .num_regs = L, .seed = 42});
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.num_regs = L;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  FunctionalSimulator fn(L);
  const auto ref = fn.Run(program);
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    ASSERT_TRUE(result.halted);
    ASSERT_EQ(result.regs.size(), static_cast<std::size_t>(L));
    for (int r = 0; r < L; ++r) {
      ASSERT_EQ(result.regs[static_cast<std::size_t>(r)],
                ref.regs[static_cast<std::size_t>(r)])
          << "r" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ls, RegisterCount, testing::Values(8, 16, 32, 64),
                         [](const auto& info) {
                           return "L" + std::to_string(info.param);
                         });

// --- Latency overrides -----------------------------------------------------------

TEST(LatencyOverride, ChangesTheFigure3Schedule) {
  // With div = 5 instead of 10, the dependent add issues at relative
  // cycle 5 instead of 10.
  const auto program = workloads::Figure3Example();
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.latencies.Set(isa::OpClass::kIntDiv, 5);
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  ASSERT_TRUE(result.halted);
  const std::uint64_t t0 = result.timeline.front().issue_cycle;
  EXPECT_EQ(result.timeline[1].issue_cycle - t0, 5u);   // add r0, r0, r3.
  EXPECT_EQ(result.timeline[3].issue_cycle - t0, 6u);   // add r1, r0, r1.
}

TEST(LatencyOverride, SingleCycleDivideCollapsesTheSchedule) {
  const auto program = workloads::Figure3Example();
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.latencies.Set(isa::OpClass::kIntDiv, 1);
  cfg.latencies.Set(isa::OpClass::kIntMul, 1);
  const auto result = RunProc(ProcessorKind::kIdeal, program, cfg);
  // Longest chain: div -> add -> add, one cycle each.
  const std::uint64_t t0 = result.timeline.front().issue_cycle;
  std::uint64_t last = 0;
  for (const auto& t : result.timeline) {
    last = std::max(last, t.complete_cycle - t0);
  }
  EXPECT_EQ(last, 2u);
}

// --- Fetch width ------------------------------------------------------------------

TEST(FetchWidth, NarrowFetchBoundsIpc) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 512, .ilp = 16});
  CoreConfig cfg;
  cfg.window_size = 64;
  cfg.fetch_width = 2;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  ASSERT_TRUE(result.halted);
  EXPECT_LE(result.Ipc(), 2.05);
  cfg.fetch_width = 0;  // Back to window-wide fetch.
  const auto wide = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_GT(wide.Ipc(), 8.0);
}

// --- Timeouts ----------------------------------------------------------------------

TEST(Timeout, NonHaltingProgramReportsNotHalted) {
  const auto program = isa::AssembleOrDie("loop: jmp loop\n");
  CoreConfig cfg;
  cfg.window_size = 8;
  cfg.max_cycles = 500;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    EXPECT_FALSE(result.halted);
    EXPECT_EQ(result.cycles, 500u);
  }
}

// --- Timing-record invariants ------------------------------------------------------

TEST(TimingRecords, AreWellFormedOnEveryProcessor) {
  const auto program = workloads::BubbleSort(8);
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    ASSERT_TRUE(result.halted);
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (const auto& t : result.timeline) {
      // Commit order == program order (sequence numbers increase).
      if (!first) {
        EXPECT_GT(t.seq, prev_seq);
      }
      prev_seq = t.seq;
      first = false;
      EXPECT_LE(t.fetch_cycle, t.issue_cycle);
      EXPECT_LE(t.issue_cycle, t.complete_cycle);
      EXPECT_LE(t.complete_cycle, t.commit_cycle);
      EXPECT_GE(t.station, 0);
      EXPECT_LT(t.station, cfg.window_size);
      EXPECT_LT(t.pc, program.size());
    }
  }
}

TEST(TimingRecords, CommitCyclesAreMonotone) {
  const auto program = workloads::Fibonacci(16);
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    std::uint64_t prev = 0;
    for (const auto& t : result.timeline) {
      EXPECT_GE(t.commit_cycle, prev);
      prev = t.commit_cycle;
    }
  }
}

// --- Halt handling -----------------------------------------------------------------

TEST(Halt, SpeculativeHaltDoesNotTerminate) {
  // A mispredicted path runs into a halt; the program must continue on the
  // correct path and produce the right answer.
  const auto program = isa::AssembleOrDie(R"(
    li r1, 1
    li r2, 1
    beq r1, r2, go    # Taken, but BTFN predicts the forward branch not
    halt              # taken, so this halt is fetched speculatively.
    go:
    li r3, 77
    halt
  )");
  CoreConfig cfg;
  cfg.window_size = 8;
  cfg.predictor = PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.regs[3], 77u);
    EXPECT_GE(result.stats.mispredictions, 1u);
  }
}

TEST(Halt, ImmediateHaltProgram) {
  const auto program = isa::AssembleOrDie("halt\n");
  CoreConfig cfg;
  cfg.window_size = 4;
  cfg.cluster_size = 4;  // Must fit the window for the hybrid core.
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.committed, 1u);
    EXPECT_LE(result.cycles, 5u);
  }
}

// --- fetch_stall_cycles --------------------------------------------------------

TEST(FetchStallCycles, DrainCyclesCountTheSameOnAllCores) {
  // A short dependent-divide chain fetched whole into a 16-entry window:
  // execution drags on for tens of cycles after fetch exhausts the program.
  // Those drain cycles are not fetch stalls (the window is simply waiting
  // on the divides), and every core must agree on that -- the UltrascalarI,
  // hybrid, and ideal cores used to count them while the UltrascalarII did
  // not, so the same run reported different stall totals per core.
  const auto program = isa::AssembleOrDie(R"(
    li r1, 96
    li r2, 2
    div r3, r1, r2
    div r4, r3, r2
    div r5, r4, r2
    halt
  )");
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  std::vector<std::uint64_t> stalls;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    ASSERT_TRUE(result.halted);
    ASSERT_GT(result.cycles, 20u);  // The divides dominate: real drain time.
    stalls.push_back(result.stats.fetch_stall_cycles);
  }
  for (std::size_t i = 1; i < stalls.size(); ++i) {
    EXPECT_EQ(stalls[i], stalls[0]);
  }
  // With ideal fetch the only empty batches are drain cycles, so the
  // aligned definition reports zero stalls here on every core.
  EXPECT_EQ(stalls[0], 0u);
}

// --- Determinism ---------------------------------------------------------------

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  // Catches hidden global state: two fresh runs of the same configuration
  // must produce identical cycles, registers, and timelines.
  const auto program = workloads::BubbleSort(10);
  CoreConfig cfg;
  cfg.window_size = 24;
  cfg.cluster_size = 8;
  cfg.predictor = PredictorKind::kTwoBit;
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  cfg.store_forwarding = true;
  cfg.num_alus = 4;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto a = RunProc(kind, program, cfg);
    const auto b = RunProc(kind, program, cfg);
    ASSERT_EQ(a.cycles, b.cycles);
    ASSERT_EQ(a.regs, b.regs);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (std::size_t k = 0; k < a.timeline.size(); ++k) {
      ASSERT_EQ(a.timeline[k].issue_cycle, b.timeline[k].issue_cycle);
      ASSERT_EQ(a.timeline[k].commit_cycle, b.timeline[k].commit_cycle);
    }
  }
}

TEST(Determinism, ProcessorObjectsAreReusable) {
  // Run() must not leak state between invocations of the same Processor.
  const auto p1 = workloads::Fibonacci(12);
  const auto p2 = workloads::DotProduct(8);
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  auto proc = MakeProcessor(ProcessorKind::kUltrascalarI, cfg);
  const auto first = proc->Run(p1);
  const auto middle = proc->Run(p2);
  const auto again = proc->Run(p1);
  EXPECT_EQ(first.cycles, again.cycles);
  EXPECT_EQ(first.regs, again.regs);
  EXPECT_NE(first.cycles, middle.cycles);
}

}  // namespace
}  // namespace ultra::core
