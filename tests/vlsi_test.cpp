// Tests for the VLSI layout/delay models: calibration against the paper's
// Figure 12 data points, the Figure 11 scaling exponents, optimal cluster
// sizes, dominance relations, and the 3-D bounds.
#include <gtest/gtest.h>

#include <vector>

#include "vlsi/vlsi.hpp"

namespace ultra::vlsi {
namespace {

using memory::BandwidthProfile;
using memory::BandwidthRegime;

std::vector<double> Doubles(std::initializer_list<double> v) { return v; }

/// Measures the log-log slope of f over n = 2^lo .. 2^hi.
template <typename F>
PowerFit SlopeOf(F f, int lo, int hi) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int e = lo; e <= hi; ++e) {
    const std::int64_t n = std::int64_t{1} << e;
    xs.push_back(static_cast<double>(n));
    ys.push_back(f(n));
  }
  return FitPowerLaw(xs, ys);
}

// --- Power-law fitting -------------------------------------------------------

TEST(FitPowerLaw, RecoversExactPowerLaw) {
  const auto xs = Doubles({1, 2, 4, 8, 16, 32});
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * x * std::sqrt(x));
  const auto fit = FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitPowerLaw, RSquaredDropsForNonPowerLaw) {
  const auto xs = Doubles({1, 2, 4, 8, 16, 32, 64});
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(std::exp(x / 8.0));
  const auto fit = FitPowerLaw(xs, ys);
  EXPECT_LT(fit.r_squared, 0.99);
}

// --- Figure 12 calibration ---------------------------------------------------

TEST(Figure12, UsiDatapathMatchesPaperArea) {
  const auto p = MagicUsiDatapath();
  // Paper: 7 cm x 7 cm = 49 cm^2.
  EXPECT_NEAR(p.geom.area_cm2(), Fig12PaperValues::kUsiAreaCm2,
              0.05 * Fig12PaperValues::kUsiAreaCm2);
  EXPECT_NEAR(p.stations_per_m2(), Fig12PaperValues::kUsiDensityPerM2,
              0.10 * Fig12PaperValues::kUsiDensityPerM2);
}

TEST(Figure12, HybridDatapathMatchesPaperArea) {
  const auto p = MagicHybridDatapath();
  EXPECT_NEAR(p.geom.area_cm2(), Fig12PaperValues::kHybridAreaCm2,
              0.07 * Fig12PaperValues::kHybridAreaCm2);
  EXPECT_NEAR(p.stations_per_m2(), Fig12PaperValues::kHybridDensityPerM2,
              0.10 * Fig12PaperValues::kHybridDensityPerM2);
}

TEST(Figure12, DensityRatioIsAboutElevenPointFive) {
  const auto usi = MagicUsiDatapath();
  const auto hybrid = MagicHybridDatapath();
  const double ratio = hybrid.stations_per_m2() / usi.stations_per_m2();
  EXPECT_GT(ratio, 9.0);
  EXPECT_LT(ratio, 14.0);
  EXPECT_NEAR(ratio, Fig12PaperValues::kDensityRatio, 1.5);
}

// --- Figure 11: scaling exponents -------------------------------------------

struct RegimeCase {
  BandwidthRegime regime;
  double usi_wire_exp;     // Expected Theta exponent of US-I wire delay.
  double hybrid_wire_exp;  // Expected exponent of hybrid wire delay.
  double scale = 1.0;      // Bandwidth scale; large values reach the
                           // M-dominated regime within the sweep.
};

class WireScaling : public testing::TestWithParam<RegimeCase> {};

TEST_P(WireScaling, UsiWireExponentMatchesTheory) {
  const auto param = GetParam();
  const UltrascalarILayout layout(
      32, BandwidthProfile::ForRegime(param.regime, param.scale));
  const auto fit =
      SlopeOf([&](std::int64_t n) { return layout.At(n).wire_um; }, 10, 20);
  EXPECT_NEAR(fit.exponent, param.usi_wire_exp, 0.1);
}

TEST_P(WireScaling, HybridWireExponentMatchesTheory) {
  const auto param = GetParam();
  const HybridLayout layout(
      32, 32, BandwidthProfile::ForRegime(param.regime, param.scale));
  const auto fit =
      SlopeOf([&](std::int64_t n) { return layout.At(n).wire_um; }, 10, 20);
  EXPECT_NEAR(fit.exponent, param.hybrid_wire_exp, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, WireScaling,
    testing::Values(
        // Case 1: M(n) = O(n^{1/2-e}): wire Theta(sqrt(n) L).
        RegimeCase{BandwidthRegime::kSqrtMinus, 0.5, 0.5},
        // Case 2: M(n) = Theta(n^{1/2}): still sqrt-dominated.
        RegimeCase{BandwidthRegime::kSqrt, 0.5, 0.5},
        // Case 3: M(n) = Omega(n^{1/2+e}) with e=0.25: M dominates (the
        // scale puts the sweep past the crossover, where the Theta bound
        // governs).
        RegimeCase{BandwidthRegime::kSqrtPlus, 0.75, 0.75, 60.0},
        // Full bandwidth: everything is Theta(n).
        RegimeCase{BandwidthRegime::kLinear, 1.0, 1.0}),
    [](const auto& info) {
      switch (info.param.regime) {
        case BandwidthRegime::kSqrtMinus: return std::string("SqrtMinus");
        case BandwidthRegime::kSqrt: return std::string("Sqrt");
        case BandwidthRegime::kSqrtPlus: return std::string("SqrtPlus");
        case BandwidthRegime::kLinear: return std::string("Linear");
        default: return std::string("Constant");
      }
    });

TEST(Figure11, UsiAreaGrowsLinearlyInN) {
  // Area Theta(n L^2) for small M: exponent 1 in n.
  const UltrascalarILayout layout(
      32, BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus));
  const auto fit = SlopeOf(
      [&](std::int64_t n) { return layout.At(n).area_um2(); }, 10, 20);
  EXPECT_NEAR(fit.exponent, 1.0, 0.1);
}

TEST(Figure11, UsiiSideIsLinearInN) {
  const UltrascalarIILayout layout(32);
  const auto fit = SlopeOf(
      [&](std::int64_t n) {
        return layout.SideUm(n, UltrascalarIILayout::Depth::kLinear);
      },
      10, 20);
  EXPECT_NEAR(fit.exponent, 1.0, 0.05);
}

TEST(Figure11, WraparoundUsiiCostsAFactorOfTwoInArea) {
  // Section 4: "it appears to cost nearly a factor of two in area to
  // implement the wrap-around mechanism."
  const UltrascalarIILayout layout(32);
  for (const std::int64_t n : {64, 1024, 1 << 16}) {
    const double plain =
        layout.SideUm(n, UltrascalarIILayout::Depth::kLinear);
    const double wrap =
        layout.WraparoundSideUm(n, UltrascalarIILayout::Depth::kLinear);
    EXPECT_NEAR(wrap * wrap / (plain * plain), 2.0, 1e-9);
  }
}

TEST(Figure11, UsiiLogDepthCostsALogFactor) {
  const UltrascalarIILayout layout(32);
  for (const std::int64_t n : {1 << 10, 1 << 14, 1 << 18}) {
    const double lin = layout.SideUm(n, UltrascalarIILayout::Depth::kLinear);
    const double log =
        layout.SideUm(n, UltrascalarIILayout::Depth::kLogViaTreeOfMeshes);
    EXPECT_GT(log / lin, 0.8 * std::log2(static_cast<double>(n)) / 2);
    EXPECT_LT(log / lin, 2.0 * std::log2(static_cast<double>(n)));
  }
}

TEST(Figure11, UsiWireGrowsLinearlyInL) {
  // Wire delay Theta(sqrt(n) L): at fixed n, exponent 1 in L.
  std::vector<double> ls;
  std::vector<double> wires;
  for (const int L : {8, 16, 32, 64}) {
    const UltrascalarILayout layout(
        L, BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus));
    ls.push_back(L);
    wires.push_back(layout.At(1 << 14).wire_um);
  }
  const auto fit = FitPowerLaw(ls, wires);
  EXPECT_NEAR(fit.exponent, 1.0, 0.15);
}

TEST(Figure11, HybridWireGrowsAsSqrtOfL) {
  // Hybrid wire delay Theta(sqrt(n L)): at fixed n, exponent 1/2 in L.
  std::vector<double> ls;
  std::vector<double> wires;
  for (const int L : {8, 16, 32, 64}) {
    const HybridLayout layout(
        L, L, BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus));
    ls.push_back(L);
    wires.push_back(layout.At(1 << 14).wire_um);
  }
  const auto fit = FitPowerLaw(ls, wires);
  EXPECT_NEAR(fit.exponent, 0.5, 0.2);
}

// --- Dominance relations (Section 7) ----------------------------------------

TEST(Dominance, UsiiBeatsUsiForSmallN) {
  // "for smaller processors (n < O(L^2)) the Ultrascalar II dominates the
  // Ultrascalar I by a factor of Theta(L/sqrt(n))".
  const int L = 64;
  const auto profile = BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
  const UltrascalarILayout usi(L, profile);
  const UltrascalarIILayout usii(L);
  const std::int64_t n = 64;  // n << L^2 = 4096.
  EXPECT_LT(usii.At(n, UltrascalarIILayout::Depth::kLinear).wire_um,
            usi.At(n).wire_um);
}

TEST(Dominance, UsiBeatsUsiiForLargeN) {
  const int L = 8;
  const auto profile = BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
  const UltrascalarILayout usi(L, profile);
  const UltrascalarIILayout usii(L);
  const std::int64_t n = 1 << 16;  // n >> L^2 = 64.
  EXPECT_LT(usi.At(n).wire_um,
            usii.At(n, UltrascalarIILayout::Depth::kLinear).wire_um);
}

TEST(Dominance, HybridBeatsBothForLargeN) {
  // "For n >= L the hybrid dominates both."
  for (const int L : {8, 32, 64}) {
    SCOPED_TRACE(L);
    const auto profile =
        BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
    const UltrascalarILayout usi(L, profile);
    const UltrascalarIILayout usii(L);
    const HybridLayout hybrid(L, L, profile);
    // Theta-dominance; with our constants the hybrid/US-II crossover sits
    // below n = 4096 for every L here.
    for (const std::int64_t n : {4096, 1 << 16, 1 << 20}) {
      if (n < L) continue;
      SCOPED_TRACE(n);
      EXPECT_LE(hybrid.At(n).wire_um, usi.At(n).wire_um * 1.01);
      EXPECT_LE(hybrid.At(n).wire_um,
                usii.At(n, UltrascalarIILayout::Depth::kLinear).wire_um *
                    1.01);
    }
  }
}

// --- Optimal cluster size -----------------------------------------------------

TEST(OptimalCluster, IsThetaOfLIn2D) {
  // Section 6: dU/dC = 0 at C = Theta(L).
  const auto profile =
      BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
  for (const int L : {8, 16, 32, 64}) {
    SCOPED_TRACE(L);
    const int c = OptimalClusterSize(L, 1 << 16, profile);
    EXPECT_GE(c, L / 4);
    EXPECT_LE(c, L * 8);
  }
}

TEST(OptimalCluster, GrowsLinearlyWithL) {
  const auto profile =
      BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
  const int c8 = OptimalClusterSize(8, 1 << 16, profile);
  const int c64 = OptimalClusterSize(64, 1 << 16, profile);
  EXPECT_GE(c64, 4 * c8);
  EXPECT_LE(c64, 16 * c8);
}

// --- Gate-delay measurements --------------------------------------------------

TEST(GateDelayMeasurement, MatchesFigure11Shapes) {
  const auto d256 = MeasureGateDelays(256, 32, 32);
  const auto d1024 = MeasureGateDelays(1024, 32, 32);
  // Ring is linear: quadruples.
  EXPECT_NEAR(static_cast<double>(d1024.usi_ring) / d256.usi_ring, 4.0, 0.3);
  // Tree is logarithmic: grows by a small additive amount.
  EXPECT_LE(d1024.usi_tree - d256.usi_tree, 12);
  // Grid is linear in n + L.
  EXPECT_NEAR(static_cast<double>(d1024.usii_grid) / d256.usii_grid,
              (1024.0 + 32) / (256 + 32), 0.3);
  // Mesh is logarithmic.
  EXPECT_LE(d1024.usii_mesh - d256.usii_mesh, 16);
  // Hybrid with C = L: Theta(L + log n) -- small additive growth in n.
  EXPECT_LE(d1024.hybrid - d256.hybrid, 12);
}

TEST(GateDelayMeasurement, HybridGateDelayGrowsWithL) {
  const auto small = MeasureGateDelays(1024, 8, 8);
  const auto large = MeasureGateDelays(1024, 64, 64);
  EXPECT_GT(large.hybrid, small.hybrid);
}

// --- 3-D bounds ---------------------------------------------------------------

TEST(ThreeD, UsiWireGrowsAsCubeRoot) {
  const UltrascalarILayout3D layout(
      32, BandwidthProfile::ForRegime(BandwidthRegime::kConstant));
  const auto fit = SlopeOf(
      [&](std::int64_t n) { return layout.At(n).wire_um; }, 12, 24);
  EXPECT_NEAR(fit.exponent, 1.0 / 3.0, 0.05);
}

TEST(ThreeD, UsiVolumeIsLinearInN) {
  const UltrascalarILayout3D layout(
      32, BandwidthProfile::ForRegime(BandwidthRegime::kConstant));
  const auto fit = SlopeOf(
      [&](std::int64_t n) { return layout.At(n).volume_um3(); }, 12, 24);
  EXPECT_NEAR(fit.exponent, 1.0, 0.1);
}

TEST(ThreeD, UsiVolumeGrowsAsLToTheThreeHalves) {
  std::vector<double> ls;
  std::vector<double> vols;
  for (const int L : {64, 256, 1024, 4096}) {
    const UltrascalarILayout3D layout(
        L, BandwidthProfile::ForRegime(BandwidthRegime::kConstant));
    ls.push_back(L);
    vols.push_back(layout.At(1 << 18).volume_um3());
  }
  const auto fit = FitPowerLaw(ls, vols);
  EXPECT_NEAR(fit.exponent, 1.5, 0.3);
}

TEST(ThreeD, UsiiVolumeIsQuadratic) {
  const UltrascalarIILayout3D layout(32);
  const auto fit = SlopeOf(
      [&](std::int64_t n) { return layout.VolumeUm3(n); }, 10, 20);
  EXPECT_NEAR(fit.exponent, 2.0, 0.05);
}

TEST(ThreeD, OptimalClusterIsLToTheThreeQuarters) {
  // Section 7: "the optimal cluster size is Theta(L^{3/4})".
  const auto profile =
      BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
  std::vector<double> ls;
  std::vector<double> cs;
  for (const int L : {16, 64, 256, 1024}) {
    ls.push_back(L);
    cs.push_back(OptimalClusterSize3D(L, 1 << 22, profile));
  }
  const auto fit = FitPowerLaw(ls, cs);
  EXPECT_NEAR(fit.exponent, 0.75, 0.2);
}

TEST(ThreeD, HybridVolumeBeatsUsiVolume) {
  // Volume Theta(n L^{3/4}) < Theta(n L^{3/2}) for large L.
  const int L = 64;
  const auto profile =
      BandwidthProfile::ForRegime(BandwidthRegime::kConstant);
  const UltrascalarILayout3D usi(L, profile);
  const int c = OptimalClusterSize3D(L, 1 << 20, profile);
  const HybridLayout3D hybrid(L, c, profile);
  EXPECT_LT(hybrid.At(1 << 20).volume_um3(), usi.At(1 << 20).volume_um3());
}

// --- Bandwidth profile sanity --------------------------------------------------

TEST(Bandwidth, RegularityHoldsForAllRegimes) {
  // Case 3 requires M(n/4) <= c M(n)/2: pure powers always satisfy it.
  for (const auto regime :
       {BandwidthRegime::kConstant, BandwidthRegime::kSqrtMinus,
        BandwidthRegime::kSqrt, BandwidthRegime::kSqrtPlus,
        BandwidthRegime::kLinear}) {
    const auto profile = BandwidthProfile::ForRegime(regime);
    const double c = profile.RegularityWitness();
    for (const double n : {64.0, 1024.0, 65536.0}) {
      EXPECT_LE(profile(n / 4), c * profile(n) / 2 + 1e-9);
    }
  }
}

TEST(Bandwidth, OpsPerCycleIsAtLeastOne) {
  const auto profile =
      BandwidthProfile::ForRegime(BandwidthRegime::kConstant, 0.5);
  EXPECT_GE(profile.OpsPerCycle(1), 1);
  EXPECT_GE(profile.OpsPerCycle(1024), 1);
}

}  // namespace
}  // namespace ultra::vlsi
