// Tests for the persistence layer: deterministic serialization, versioned
// checkpoint files, crash-safe journals, checkpoint/restore cycle-exactness
// on all four cores, sweep resume byte-identity, and repro bundles.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/config_codec.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "isa/program_codec.hpp"
#include "persist/checkpoint.hpp"
#include "persist/journal.hpp"
#include "persist/serial.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using core::CoreConfig;
using core::ProcessorKind;

constexpr ProcessorKind kAllKinds[] = {
    ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
    ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid};

/// A scratch directory unique to the current test, cleaned up on teardown.
class TempDir {
 public:
  TempDir() {
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    path_ = std::filesystem::temp_directory_path() /
            (std::string("ultra_persist_") + info->test_suite_name() + "_" +
             info->name());
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string File(const std::string& name) const {
    return (path_ / name).string();
  }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// Full-state equality: everything RunResult carries, including the
/// per-instruction timeline — the restored run must be indistinguishable
/// from the uninterrupted one.
void ExpectSameResult(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.stats.mispredictions, b.stats.mispredictions);
  EXPECT_EQ(a.stats.forwarded_loads, b.stats.forwarded_loads);
  EXPECT_EQ(a.stats.squashed_instructions, b.stats.squashed_instructions);
  EXPECT_EQ(a.stats.load_count, b.stats.load_count);
  EXPECT_EQ(a.stats.store_count, b.stats.store_count);
  EXPECT_EQ(a.stats.fetch_stall_cycles, b.stats.fetch_stall_cycles);
  EXPECT_EQ(a.stats.window_full_cycles, b.stats.window_full_cycles);
  EXPECT_EQ(a.stats.fault.injected, b.stats.fault.injected);
  EXPECT_EQ(a.stats.fault.checks, b.stats.fault.checks);
  EXPECT_EQ(a.stats.fault.divergences, b.stats.fault.divergences);
  EXPECT_EQ(a.stats.fault.resyncs, b.stats.fault.resyncs);
  EXPECT_EQ(a.stats.fault.squashes, b.stats.fault.squashes);
  EXPECT_EQ(a.stats.mem_hierarchy.l1d_hits, b.stats.mem_hierarchy.l1d_hits);
  EXPECT_EQ(a.stats.mem_hierarchy.l1d_misses,
            b.stats.mem_hierarchy.l1d_misses);
  EXPECT_EQ(a.stats.mem_hierarchy.l1d_writebacks,
            b.stats.mem_hierarchy.l1d_writebacks);
  EXPECT_EQ(a.stats.mem_hierarchy.l2_hits, b.stats.mem_hierarchy.l2_hits);
  EXPECT_EQ(a.stats.mem_hierarchy.l2_misses, b.stats.mem_hierarchy.l2_misses);
  EXPECT_EQ(a.stats.mem_hierarchy.icache_hits,
            b.stats.mem_hierarchy.icache_hits);
  EXPECT_EQ(a.stats.mem_hierarchy.icache_misses,
            b.stats.mem_hierarchy.icache_misses);
  EXPECT_EQ(a.stats.mem_hierarchy.icache_stall_cycles,
            b.stats.mem_hierarchy.icache_stall_cycles);
  EXPECT_EQ(a.stats.mem_hierarchy.prefetch_issued,
            b.stats.mem_hierarchy.prefetch_issued);
  EXPECT_EQ(a.stats.mem_hierarchy.prefetch_fills,
            b.stats.mem_hierarchy.prefetch_fills);
  EXPECT_EQ(a.stats.mem_hierarchy.prefetch_useful,
            b.stats.mem_hierarchy.prefetch_useful);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    const core::InstrTiming& x = a.timeline[i];
    const core::InstrTiming& y = b.timeline[i];
    ASSERT_EQ(x.seq, y.seq) << "timeline[" << i << "]";
    ASSERT_EQ(x.station, y.station) << "timeline[" << i << "]";
    ASSERT_EQ(x.pc, y.pc) << "timeline[" << i << "]";
    ASSERT_EQ(x.fetch_cycle, y.fetch_cycle) << "timeline[" << i << "]";
    ASSERT_EQ(x.issue_cycle, y.issue_cycle) << "timeline[" << i << "]";
    ASSERT_EQ(x.complete_cycle, y.complete_cycle) << "timeline[" << i << "]";
    ASSERT_EQ(x.commit_cycle, y.commit_cycle) << "timeline[" << i << "]";
  }
}

/// Checkpoint at @p cycle, restore, and require the resumed run to be
/// indistinguishable from @p base (the uninterrupted run).
void ExpectCheckpointExact(ProcessorKind kind, const CoreConfig& cfg,
                          const isa::Program& program,
                          const core::RunResult& base, std::uint64_t cycle) {
  SCOPED_TRACE("checkpoint cycle " + std::to_string(cycle));
  const auto proc = core::MakeProcessor(kind, cfg);
  const persist::Checkpoint ckpt = proc->SaveCheckpoint(program, cycle);
  EXPECT_EQ(ckpt.header.cycle, cycle);
  EXPECT_EQ(ckpt.header.core_kind, static_cast<std::uint8_t>(kind));
  const core::RunResult resumed = proc->RestoreCheckpoint(program, ckpt);
  ExpectSameResult(resumed, base);
}

// --- Encoder / Decoder ---------------------------------------------------

TEST(Serial, RoundTripsEveryType) {
  persist::Encoder e;
  e.U8(0xAB);
  e.U16(0xBEEF);
  e.U32(0xDEADBEEFu);
  e.U64(0x0123456789ABCDEFull);
  e.I32(-42);
  e.I64(-1234567890123ll);
  e.Bool(true);
  e.Bool(false);
  e.F64(3.25);
  e.Str("hello, persist");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  e.Bytes(blob);

  persist::Decoder d(e.bytes());
  EXPECT_EQ(d.U8(), 0xAB);
  EXPECT_EQ(d.U16(), 0xBEEF);
  EXPECT_EQ(d.U32(), 0xDEADBEEFu);
  EXPECT_EQ(d.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.I32(), -42);
  EXPECT_EQ(d.I64(), -1234567890123ll);
  EXPECT_TRUE(d.Bool());
  EXPECT_FALSE(d.Bool());
  EXPECT_EQ(d.F64(), 3.25);
  EXPECT_EQ(d.Str(), "hello, persist");
  EXPECT_EQ(d.Bytes(), blob);
  EXPECT_TRUE(d.AtEnd());
}

TEST(Serial, DecoderThrowsOnUnderflow) {
  persist::Encoder e;
  e.U16(7);
  persist::Decoder d(e.bytes());
  (void)d.U16();
  EXPECT_THROW((void)d.U32(), persist::FormatError);
}

// --- Checkpoint file format ----------------------------------------------

TEST(CheckpointFile, GoldenHeaderBytesLockTheFormatVersion) {
  // The first 8 bytes of every checkpoint are the magic "UCKP" and the
  // format version, little-endian. Bumping kCheckpointVersion without a
  // migration plan must fail THIS test, not a user's restore.
  persist::Checkpoint ckpt;
  ckpt.header.core_kind = 2;
  ckpt.header.cycle = 0x1122334455667788ull;
  ckpt.header.config_fingerprint = 0xAABBCCDDEEFF0011ull;
  ckpt.header.program_fingerprint = 0x2233445566778899ull;
  ckpt.state = {0xDE, 0xAD};
  const std::vector<std::uint8_t> bytes = persist::EncodeCheckpoint(ckpt);
  ASSERT_GE(bytes.size(), 8u);
  // Version 3: the mem/fetch SaveState formats grew the L1D/L2/icache
  // hierarchy models (PR 9).
  const std::uint8_t golden[8] = {'U', 'C', 'K', 'P', 3, 0, 0, 0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[static_cast<std::size_t>(i)], golden[i]) << "byte " << i;
  }
  const persist::Checkpoint back = persist::DecodeCheckpoint(bytes);
  EXPECT_EQ(back.header, ckpt.header);
  EXPECT_EQ(back.state, ckpt.state);
}

TEST(CheckpointFile, CorruptionIsDetected) {
  persist::Checkpoint ckpt;
  ckpt.header.cycle = 42;
  ckpt.state = std::vector<std::uint8_t>(64, 0x5A);
  std::vector<std::uint8_t> bytes = persist::EncodeCheckpoint(ckpt);
  // Flip one state byte: CRC must catch it.
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW((void)persist::DecodeCheckpoint(bytes), persist::FormatError);
  // Truncation must be caught too.
  const std::vector<std::uint8_t> good = persist::EncodeCheckpoint(ckpt);
  const std::vector<std::uint8_t> truncated(good.begin(), good.end() - 3);
  EXPECT_THROW((void)persist::DecodeCheckpoint(truncated),
               persist::FormatError);
}

TEST(CheckpointFile, WriteReadRoundTrip) {
  const TempDir tmp;
  persist::Checkpoint ckpt;
  ckpt.header.core_kind = 1;
  ckpt.header.cycle = 77;
  ckpt.state = {9, 8, 7};
  const std::string path = tmp.File("state.ckpt");
  persist::WriteCheckpointFile(path, ckpt);
  const persist::Checkpoint back = persist::ReadCheckpointFile(path);
  EXPECT_EQ(back.header, ckpt.header);
  EXPECT_EQ(back.state, ckpt.state);
}

// --- Journal framing ------------------------------------------------------

TEST(Journal, AppendReadRoundTrip) {
  const TempDir tmp;
  const std::string path = tmp.File("test.journal");
  {
    persist::JournalWriter w(path, /*truncate=*/true);
    w.Append(1, std::vector<std::uint8_t>{0xAA});
    w.Append(2, std::vector<std::uint8_t>{0xBB, 0xCC});
    w.Append(3, {});
  }
  const auto records = persist::ReadJournal(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1u);
  EXPECT_EQ(records[0].payload, (std::vector<std::uint8_t>{0xAA}));
  EXPECT_EQ(records[1].type, 2u);
  EXPECT_EQ(records[2].type, 3u);
  EXPECT_TRUE(records[2].payload.empty());
}

TEST(Journal, MissingFileReadsEmpty) {
  EXPECT_TRUE(persist::ReadJournal("/nonexistent/ultra/test.journal").empty());
}

TEST(Journal, TornTailIsDiscardedNotFatal) {
  const TempDir tmp;
  const std::string path = tmp.File("torn.journal");
  {
    persist::JournalWriter w(path, /*truncate=*/true);
    w.Append(1, std::vector<std::uint8_t>{1, 2, 3});
    w.Append(2, std::vector<std::uint8_t>{4, 5, 6});
  }
  // Simulate a SIGKILL mid-append: chop bytes off the last frame.
  const auto full = persist::ReadFileBytes(path);
  const std::vector<std::uint8_t> torn(full.begin(), full.end() - 5);
  persist::AtomicWriteFile(path, torn);
  const auto records = persist::ReadJournal(path);
  ASSERT_EQ(records.size(), 1u);  // Record 2's frame is torn; record 1 survives.
  EXPECT_EQ(records[0].type, 1u);
}

TEST(Journal, ScanReportsDiscardedTailBytes) {
  const TempDir tmp;
  const std::string path = tmp.File("scan.journal");
  {
    persist::JournalWriter w(path, /*truncate=*/true);
    w.Append(1, std::vector<std::uint8_t>{1, 2, 3});
    w.Append(2, std::vector<std::uint8_t>{4, 5, 6});
  }
  const std::uint64_t clean_size = persist::ReadFileBytes(path).size();
  persist::JournalScan scan = persist::ScanJournal(path);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, clean_size);
  EXPECT_EQ(scan.discarded_bytes, 0u);

  // Tear the second frame: the scan must account for every lost byte.
  auto bytes = persist::ReadFileBytes(path);
  bytes.resize(bytes.size() - 5);
  persist::AtomicWriteFile(path, bytes);
  scan = persist::ScanJournal(path);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes + scan.discarded_bytes, bytes.size());
  EXPECT_GT(scan.discarded_bytes, 0u);

  // A missing file scans as empty and clean.
  scan = persist::ScanJournal(tmp.File("absent.journal"));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.discarded_bytes, 0u);
}

TEST(Journal, RepairReclaimsTornTailSoNewAppendsAreVisible) {
  const TempDir tmp;
  const std::string path = tmp.File("heal.journal");
  {
    persist::JournalWriter w(path, /*truncate=*/true);
    w.Append(1, std::vector<std::uint8_t>{1});
    w.Append(2, std::vector<std::uint8_t>{2});
  }
  // A crash mid-append leaves half a frame. Appending *after* that garbage
  // (which is what O_APPEND alone would do) orphans every later record,
  // because readers stop at the first bad frame. RepairJournal is what
  // makes post-crash appends reachable.
  auto bytes = persist::ReadFileBytes(path);
  const std::vector<std::uint8_t> half_frame = {'U', 'J', 'N', 'L', 9, 9};
  bytes.insert(bytes.end(), half_frame.begin(), half_frame.end());
  persist::AtomicWriteFile(path, bytes);

  EXPECT_EQ(persist::RepairJournal(path), half_frame.size());
  EXPECT_EQ(persist::RepairJournal(path), 0u);  // Idempotent once clean.
  {
    persist::JournalWriter w(path, /*truncate=*/false);
    w.Append(3, std::vector<std::uint8_t>{3});
  }
  const auto records = persist::ReadJournal(path);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1u);
  EXPECT_EQ(records[1].type, 2u);
  EXPECT_EQ(records[2].type, 3u);

  // Repairing a missing journal is a clean no-op (fresh service start).
  EXPECT_EQ(persist::RepairJournal(tmp.File("absent.journal")), 0u);
}

TEST(Journal, BitFlipsNeverCrashTheReader) {
  const TempDir tmp;
  const std::string path = tmp.File("flip.journal");
  {
    persist::JournalWriter w(path, /*truncate=*/true);
    w.Append(7, std::vector<std::uint8_t>{10, 20, 30, 40});
    w.Append(8, std::vector<std::uint8_t>{50, 60});
    w.Append(9, {});
  }
  const auto good = persist::ReadFileBytes(path);
  // Flip one bit at every byte position: the reader must return some valid
  // prefix of the records (possibly empty) and never throw or crash — a
  // corrupt journal means lost tail records, not a lost daemon.
  for (std::size_t i = 0; i < good.size(); ++i) {
    auto bad = good;
    bad[i] ^= 0x10;
    persist::AtomicWriteFile(path, bad);
    const auto records = persist::ReadJournal(path);
    EXPECT_LE(records.size(), 3u) << "byte " << i;
    const persist::JournalScan scan = persist::ScanJournal(path);
    EXPECT_EQ(scan.valid_bytes + scan.discarded_bytes, good.size())
        << "byte " << i;
  }
}

// --- Config / program codecs ---------------------------------------------

TEST(ConfigCodec, RoundTripPreservesFingerprint) {
  CoreConfig cfg;
  cfg.window_size = 48;
  cfg.num_regs = 24;
  cfg.cluster_size = 6;
  cfg.predictor = core::PredictorKind::kTwoBit;
  cfg.fetch_mode = core::FetchMode::kTraceCache;
  cfg.mem.mode = memory::MemTimingMode::kFatTree;
  cfg.store_forwarding = true;
  cfg.num_alus = 3;
  cfg.datapath_eval = core::DatapathEval::kChecked;
  cfg.checker_stride = 16;
  cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::Random(99, 0.01, 5000));

  persist::Encoder e;
  core::EncodeCoreConfig(e, cfg);
  persist::Decoder d(e.bytes());
  const CoreConfig back = core::DecodeCoreConfig(d);
  EXPECT_TRUE(d.AtEnd());
  EXPECT_EQ(core::FingerprintConfig(back), core::FingerprintConfig(cfg));
  ASSERT_NE(back.fault_plan, nullptr);
  EXPECT_EQ(back.fault_plan->size(), cfg.fault_plan->size());
  EXPECT_EQ(back.fault_plan->provenance(), cfg.fault_plan->provenance());
}

TEST(ConfigCodec, HierarchyRoundTripPreservesFingerprint) {
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.mem.hierarchy.l1i.enabled = true;
  cfg.mem.hierarchy.l1i.sets = 32;
  cfg.mem.hierarchy.l1i.ways = 2;
  cfg.mem.hierarchy.l1i.block_bytes = 16;
  cfg.mem.hierarchy.l1i.miss_latency = 9;
  cfg.mem.hierarchy.l1d.enabled = true;
  cfg.mem.hierarchy.l1d.sets = 16;
  cfg.mem.hierarchy.l1d.hit_latency = 2;
  cfg.mem.hierarchy.l2.enabled = true;
  cfg.mem.hierarchy.l2.sets = 128;
  cfg.mem.hierarchy.l2.ways = 8;
  cfg.mem.hierarchy.prefetch.depth = 4;
  cfg.mem.hierarchy.prefetch.table_entries = 8;
  cfg.mem.hierarchy.prefetch.fill_latency = 6;

  persist::Encoder e;
  core::EncodeCoreConfig(e, cfg);
  persist::Decoder d(e.bytes());
  const CoreConfig back = core::DecodeCoreConfig(d);
  EXPECT_TRUE(d.AtEnd());
  EXPECT_EQ(core::FingerprintConfig(back), core::FingerprintConfig(cfg));
  EXPECT_EQ(back.mem.hierarchy.l1i.sets, 32);
  EXPECT_EQ(back.mem.hierarchy.l1i.miss_latency, 9);
  EXPECT_EQ(back.mem.hierarchy.l1d.hit_latency, 2);
  EXPECT_EQ(back.mem.hierarchy.l2.ways, 8);
  EXPECT_EQ(back.mem.hierarchy.prefetch.depth, 4);
  EXPECT_EQ(back.mem.hierarchy.prefetch.fill_latency, 6);
}

TEST(ConfigCodec, RejectsCorruptHierarchyGeometry) {
  // The encoder writes fields verbatim, so an invalid source config stands
  // in for a corrupted byte stream: the *decoder* must reject it as a
  // FormatError rather than hand the simulator an impossible geometry.
  const auto corrupt = [](void (*mutate)(CoreConfig&)) {
    CoreConfig cfg;
    cfg.mem.hierarchy.l1d.enabled = true;
    mutate(cfg);
    persist::Encoder e;
    core::EncodeCoreConfig(e, cfg);
    persist::Decoder d(e.bytes());
    EXPECT_THROW((void)core::DecodeCoreConfig(d), persist::FormatError);
  };
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.sets = 3; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.sets = 0; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.ways = 0; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.block_bytes = 24; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.block_bytes = 2; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.hit_latency = 0; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.l1d.miss_latency = -1; });
  corrupt([](CoreConfig& c) { c.mem.hierarchy.prefetch.depth = -2; });
  corrupt([](CoreConfig& c) {
    c.mem.hierarchy.prefetch.depth = 1;
    c.mem.hierarchy.prefetch.table_entries = 0;
  });
  corrupt([](CoreConfig& c) {
    c.mem.hierarchy.prefetch.depth = 1;
    c.mem.hierarchy.prefetch.fill_latency = 0;
  });
}

TEST(ProgramCodec, RoundTripPreservesFingerprint) {
  const isa::Program program = workloads::Fibonacci(24);
  persist::Encoder e;
  isa::EncodeProgram(e, program);
  persist::Decoder d(e.bytes());
  const isa::Program back = isa::DecodeProgram(d);
  EXPECT_TRUE(d.AtEnd());
  EXPECT_EQ(isa::FingerprintProgram(back), isa::FingerprintProgram(program));
  EXPECT_EQ(back.size(), program.size());
}

// --- Checkpoint/restore cycle-exactness on all four cores -----------------

TEST(Checkpoint, RestoredRunIsCycleExactOnEveryCore) {
  const isa::Program program = workloads::Fibonacci(64);
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 16;
    cfg.cluster_size = 4;
    cfg.predictor = core::PredictorKind::kBtfn;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    const auto proc = core::MakeProcessor(kind, cfg);
    const core::RunResult base = proc->Run(program);
    ASSERT_TRUE(base.halted);
    for (const std::uint64_t cycle :
         {std::uint64_t{1}, std::uint64_t{7}, base.cycles / 2,
          base.cycles - 1}) {
      if (cycle == 0 || cycle >= base.cycles) continue;
      ExpectCheckpointExact(kind, cfg, program, base, cycle);
    }
  }
}

TEST(Checkpoint, ExactUnderMemorySystemAndTraceCache) {
  const isa::Program program = workloads::DotProduct(48);
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 16;
    cfg.cluster_size = 4;
    cfg.predictor = core::PredictorKind::kTwoBit;
    cfg.fetch_mode = core::FetchMode::kTraceCache;
    cfg.mem.mode = memory::MemTimingMode::kFatTree;
    cfg.store_forwarding = true;
    const auto proc = core::MakeProcessor(kind, cfg);
    const core::RunResult base = proc->Run(program);
    ASSERT_TRUE(base.halted);
    ExpectCheckpointExact(kind, cfg, program, base, base.cycles / 3);
    ExpectCheckpointExact(kind, cfg, program, base, 2 * base.cycles / 3);
  }
}

TEST(Checkpoint, ExactUnderLiveFaultInjection) {
  // The hard case: a checkpoint taken while injected corruption is live in
  // the datapath delivery buffers must reproduce the corrupted trajectory
  // (divergences, resyncs, squashes) exactly.
  const isa::Program program =
      workloads::RandomMix({.num_instructions = 512});
  for (const auto kind :
       {ProcessorKind::kUltrascalarI, ProcessorKind::kUltrascalarII,
        ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 16;
    cfg.cluster_size = 4;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    cfg.datapath_eval = core::DatapathEval::kChecked;
    cfg.checker_stride = 8;
    cfg.fault_plan = std::make_shared<const fault::FaultPlan>(
        fault::FaultPlan::Random(7, 0.02, 50'000));
    const auto proc = core::MakeProcessor(kind, cfg);
    const core::RunResult base = proc->Run(program);
    ASSERT_TRUE(base.halted);
    EXPECT_GT(base.stats.fault.injected, 0u);
    for (const std::uint64_t cycle : {base.cycles / 4, base.cycles / 2,
                                      (3 * base.cycles) / 4}) {
      if (cycle == 0 || cycle >= base.cycles) continue;
      ExpectCheckpointExact(kind, cfg, program, base, cycle);
    }
  }
}

TEST(Checkpoint, ExactWithWarmHierarchyAndInFlightMisses) {
  // The PR 9 case: checkpoints taken with warm L1D/L2/icache contents, a
  // trained stride prefetcher, queued prefetch fills, and demand misses
  // mid-flight between the hierarchy and the bandwidth-limited backing
  // tier. The restored run must replay the exact hit/miss/stall sequence.
  const isa::Program program = workloads::StridedSweep(
      {.array_words = 512, .stride_words = 8, .passes = 3, .unroll = 2});
  for (const auto kind : kAllKinds) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    CoreConfig cfg;
    cfg.window_size = 16;
    cfg.cluster_size = 4;
    cfg.predictor = core::PredictorKind::kBtfn;
    cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    cfg.mem.regime = memory::BandwidthRegime::kConstant;
    cfg.mem.hierarchy.l1i.enabled = true;
    cfg.mem.hierarchy.l1i.sets = 4;
    cfg.mem.hierarchy.l1i.ways = 2;
    cfg.mem.hierarchy.l1i.block_bytes = 16;
    cfg.mem.hierarchy.l1d.enabled = true;
    cfg.mem.hierarchy.l1d.sets = 4;
    cfg.mem.hierarchy.l1d.ways = 2;
    cfg.mem.hierarchy.l1d.block_bytes = 32;
    cfg.mem.hierarchy.l2.enabled = true;
    cfg.mem.hierarchy.l2.sets = 16;
    cfg.mem.hierarchy.l2.ways = 4;
    cfg.mem.hierarchy.l2.block_bytes = 32;
    cfg.mem.hierarchy.prefetch.depth = 2;
    cfg.mem.hierarchy.prefetch.fill_latency = 7;
    const auto proc = core::MakeProcessor(kind, cfg);
    const core::RunResult base = proc->Run(program);
    ASSERT_TRUE(base.halted);
    // The axes must actually be live in this configuration.
    EXPECT_GT(base.stats.mem_hierarchy.l1d_misses, 0u);
    EXPECT_GT(base.stats.mem_hierarchy.icache_misses, 0u);
    EXPECT_GT(base.stats.mem_hierarchy.prefetch_issued, 0u);
    for (const std::uint64_t cycle : {base.cycles / 4, base.cycles / 2,
                                      (3 * base.cycles) / 4}) {
      if (cycle == 0 || cycle >= base.cycles) continue;
      ExpectCheckpointExact(kind, cfg, program, base, cycle);
    }
  }
}

TEST(Checkpoint, RestoreRejectsMismatchedConfigProgramAndKind) {
  const isa::Program program = workloads::Fibonacci(32);
  CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  const auto proc = core::MakeProcessor(ProcessorKind::kUltrascalarI, cfg);
  const persist::Checkpoint ckpt = proc->SaveCheckpoint(program, 5);

  // Different core kind.
  const auto other = core::MakeProcessor(ProcessorKind::kHybrid, cfg);
  EXPECT_THROW((void)other->RestoreCheckpoint(program, ckpt),
               persist::FormatError);
  // Different config.
  CoreConfig cfg2 = cfg;
  cfg2.window_size = 32;
  const auto proc2 = core::MakeProcessor(ProcessorKind::kUltrascalarI, cfg2);
  EXPECT_THROW((void)proc2->RestoreCheckpoint(program, ckpt),
               persist::FormatError);
  // Different program.
  const isa::Program program2 = workloads::Fibonacci(33);
  EXPECT_THROW((void)proc->RestoreCheckpoint(program2, ckpt),
               persist::FormatError);
}

TEST(Checkpoint, SaveBeyondRunLengthThrows) {
  const isa::Program program = workloads::Fibonacci(8);
  CoreConfig cfg;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  const auto proc = core::MakeProcessor(ProcessorKind::kUltrascalarI, cfg);
  const core::RunResult base = proc->Run(program);
  EXPECT_THROW((void)proc->SaveCheckpoint(program, base.cycles + 100),
               std::runtime_error);
}

// --- Sweep journaling and resume ------------------------------------------

std::vector<runtime::SweepPoint> SmallSweep() {
  const auto fib = std::make_shared<isa::Program>(workloads::Fibonacci(48));
  const auto dot = std::make_shared<isa::Program>(workloads::DotProduct(32));
  std::vector<runtime::SweepPoint> points;
  for (const auto kind : kAllKinds) {
    for (const auto& [name, program] :
         {std::pair{"fib", fib}, std::pair{"dot", dot}}) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = 12;
      p.config.cluster_size = 4;
      p.config.mem.mode = memory::MemTimingMode::kMagic;
      p.program = program;
      p.workload = name;
      points.push_back(std::move(p));
    }
  }
  return points;
}

std::string ExportCsv(const std::vector<runtime::SweepOutcome>& outcomes) {
  std::ostringstream os;
  runtime::WriteCsv(os, outcomes);
  return os.str();
}

std::string ExportJson(const std::vector<runtime::SweepOutcome>& outcomes) {
  std::ostringstream os;
  runtime::WriteJson(os, outcomes);
  return os.str();
}

TEST(SweepJournal, OutcomeRecordRoundTrips) {
  runtime::SweepOutcome o;
  o.index = 7;
  o.kind = ProcessorKind::kHybrid;
  o.workload = "fib";
  o.ok = false;
  o.error = "r3 = 5, expected 8";
  o.attempts = 3;
  o.deadline_exceeded = true;
  o.attempt_errors = {"deadline exceeded", "deadline exceeded",
                      "r3 = 5, expected 8"};
  o.result.halted = true;
  o.result.cycles = 123;
  o.result.committed = 99;
  o.result.regs = {1, 2, 3, 4};
  o.result.stats.mispredictions = 5;
  o.result.stats.fault.injected = 2;

  persist::Encoder e;
  runtime::EncodeOutcome(e, o);
  persist::Decoder d(e.bytes());
  const runtime::SweepOutcome back = runtime::DecodeOutcome(d);
  EXPECT_TRUE(d.AtEnd());
  EXPECT_EQ(back.index, o.index);
  EXPECT_EQ(back.kind, o.kind);
  EXPECT_EQ(back.workload, o.workload);
  EXPECT_EQ(back.ok, o.ok);
  EXPECT_EQ(back.error, o.error);
  EXPECT_EQ(back.attempts, o.attempts);
  EXPECT_EQ(back.deadline_exceeded, o.deadline_exceeded);
  EXPECT_EQ(back.attempt_errors, o.attempt_errors);
  EXPECT_EQ(back.result.cycles, o.result.cycles);
  EXPECT_EQ(back.result.regs, o.result.regs);
  EXPECT_EQ(back.result.stats.mispredictions, 5u);
  EXPECT_EQ(back.result.stats.fault.injected, 2u);
}

TEST(SweepJournal, ResumeAfterPartialJournalIsByteIdentical) {
  const auto points = SmallSweep();
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const TempDir tmp;
    const runtime::SweepRunner runner(
        {.num_threads = threads, .check_architectural_state = true});

    // The reference artifact: an uninterrupted journaled sweep.
    const std::string full_path = tmp.File("full.journal");
    const auto full = runner.RunJournaled(points, full_path);
    const std::string want_csv = ExportCsv(full.outcomes);
    const std::string want_json = ExportJson(full.outcomes);

    // Simulate a crash: keep only the header + the first 3 outcome records
    // of the journal, then resume from the truncated copy.
    const auto records = persist::ReadJournal(full_path);
    ASSERT_GT(records.size(), 4u);
    const std::string partial_path = tmp.File("partial.journal");
    {
      persist::JournalWriter w(partial_path, /*truncate=*/true);
      for (std::size_t i = 0; i < 4; ++i) {
        w.Append(records[i].type, records[i].payload);
      }
    }
    const auto resumed = runner.Resume(points, partial_path);
    EXPECT_EQ(ExportCsv(resumed.outcomes), want_csv);
    EXPECT_EQ(ExportJson(resumed.outcomes), want_json);

    // Resuming a *complete* journal re-runs nothing and still matches.
    const auto resumed_full = runner.Resume(points, full_path);
    EXPECT_EQ(ExportCsv(resumed_full.outcomes), want_csv);
    EXPECT_EQ(ExportJson(resumed_full.outcomes), want_json);
  }
}

TEST(SweepJournal, ResumeToleratesTornTail) {
  const auto points = SmallSweep();
  const TempDir tmp;
  const runtime::SweepRunner runner({.num_threads = 2});
  const std::string path = tmp.File("torn.journal");
  const auto full = runner.RunJournaled(points, path);
  const std::string want_csv = ExportCsv(full.outcomes);

  // Chop mid-record: the torn record is rediscovered by re-running its
  // point; everything before it is reused.
  const auto bytes = persist::ReadFileBytes(path);
  const std::vector<std::uint8_t> torn(bytes.begin(), bytes.end() - 7);
  persist::AtomicWriteFile(path, torn);
  const auto resumed = runner.Resume(points, path);
  EXPECT_EQ(ExportCsv(resumed.outcomes), want_csv);
}

TEST(SweepJournal, ResumeRejectsForeignJournal) {
  const auto points = SmallSweep();
  const TempDir tmp;
  const std::string path = tmp.File("foreign.journal");
  const runtime::SweepRunner runner({.num_threads = 1});
  (void)runner.RunJournaled(points, path);

  // Same journal, different sweep (one extra point): fingerprint mismatch.
  auto more = points;
  more.push_back(points.front());
  more.back().workload = "extra";
  EXPECT_THROW((void)runner.Resume(more, path), std::runtime_error);
}

TEST(SweepJournal, ResumeOnMissingJournalRunsFresh) {
  const auto points = SmallSweep();
  const TempDir tmp;
  const runtime::SweepRunner runner({.num_threads = 2});
  const auto fresh = runner.RunWithReport(points);
  const auto resumed = runner.Resume(points, tmp.File("never-written.journal"));
  EXPECT_EQ(ExportCsv(resumed.outcomes), ExportCsv(fresh.outcomes));
}

// --- Quarantine export fields ---------------------------------------------

TEST(SweepExport, QuarantineRecordsFaultSeedAndRetryHistory) {
  runtime::SweepOutcome o;
  o.index = 2;
  o.kind = ProcessorKind::kUltrascalarI;
  o.workload = "mix";
  o.ok = false;
  o.error = "final error";
  o.attempts = 2;
  o.attempt_errors = {"first error", "final error"};
  o.config.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::Random(4242, 0.01, 1000));
  const std::vector<runtime::SweepOutcome> outcomes = {o};

  const std::string csv = ExportCsv(outcomes);
  EXPECT_NE(csv.find("fault_seed=4242"), std::string::npos);
  EXPECT_NE(csv.find("attempts=2"), std::string::npos);
  EXPECT_NE(csv.find("error=final error"), std::string::npos);

  const std::string json = ExportJson(outcomes);
  EXPECT_NE(json.find("\"fault_seed\": 4242"), std::string::npos);
  EXPECT_NE(json.find("\"attempt_errors\": [\"first error\", \"final error\"]"),
            std::string::npos);
}

TEST(SweepExport, FaultFreeQuarantineKeepsHistoricalShape) {
  runtime::SweepOutcome o;
  o.index = 0;
  o.kind = ProcessorKind::kIdeal;
  o.workload = "fib";
  o.ok = false;
  o.error = "boom";
  o.attempts = 1;
  o.attempt_errors = {"boom"};
  const std::vector<runtime::SweepOutcome> outcomes = {o};
  const std::string csv = ExportCsv(outcomes);
  EXPECT_EQ(csv.find("fault_seed"), std::string::npos);
  const std::string json = ExportJson(outcomes);
  EXPECT_EQ(json.find("fault_seed"), std::string::npos);
  EXPECT_EQ(json.find("attempt_errors"), std::string::npos);
}

// --- Repro bundles --------------------------------------------------------

TEST(ReproBundle, FailedFaultPointReplaysStandalone) {
  // An unchecked fault-injection point: corruption reaches architectural
  // state, the oracle quarantines it, and the runner emits a bundle.
  const TempDir tmp;
  runtime::SweepPoint point;
  point.kind = ProcessorKind::kUltrascalarI;
  point.config.window_size = 32;
  point.config.mem.mode = memory::MemTimingMode::kMagic;
  point.config.datapath_eval = core::DatapathEval::kIncremental;
  // This (seed, rate, workload) combination verifiably corrupts
  // architectural state: most injected faults are masked by downstream
  // recomputation, so the recipe matters.
  point.config.fault_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::Random(424242, 0.05, 100'000));
  point.program = std::make_shared<isa::Program>(
      workloads::RandomMix({.num_instructions = 1024}));
  point.workload = "mix-fault";

  const runtime::SweepRunner runner({.num_threads = 1,
                                     .check_architectural_state = true,
                                     .bundle_dir = tmp.File("bundles"),
                                     .checkpoint_every = 64});
  const auto outcomes = runner.Run({point});
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_FALSE(outcomes[0].ok) << "fault plan unexpectedly harmless";

  // The bundle must replay with no access to the original sweep objects.
  const std::string bundle_path = tmp.File("bundles") + "/point-0";
  const runtime::ReproBundle bundle =
      runtime::ReadReproBundle(bundle_path);
  EXPECT_EQ(bundle.outcome.error, outcomes[0].error);
  EXPECT_EQ(bundle.outcome.workload, "mix-fault");
  ASSERT_NE(bundle.point.program, nullptr);
  ASSERT_NE(bundle.point.config.fault_plan, nullptr);
  EXPECT_EQ(bundle.point.config.fault_plan->provenance().seed, 424242u);
  ASSERT_TRUE(bundle.checkpoint.has_value());

  // Re-run from scratch: identical trajectory.
  const auto proc =
      core::MakeProcessor(bundle.point.kind, bundle.point.config);
  const core::RunResult replay = proc->Run(*bundle.point.program);
  EXPECT_EQ(replay.cycles, bundle.outcome.result.cycles);
  EXPECT_EQ(replay.committed, bundle.outcome.result.committed);
  EXPECT_EQ(replay.regs, bundle.outcome.result.regs);

  // Re-run from the bundled checkpoint: still identical.
  const core::RunResult from_ckpt =
      proc->RestoreCheckpoint(*bundle.point.program, *bundle.checkpoint);
  EXPECT_EQ(from_ckpt.cycles, bundle.outcome.result.cycles);
  EXPECT_EQ(from_ckpt.committed, bundle.outcome.result.committed);
  EXPECT_EQ(from_ckpt.regs, bundle.outcome.result.regs);
}

TEST(ReproBundle, CorruptBundleFileIsRejected) {
  const TempDir tmp;
  runtime::SweepPoint point;
  point.kind = ProcessorKind::kIdeal;
  point.config.mem.mode = memory::MemTimingMode::kMagic;
  point.program = std::make_shared<isa::Program>(workloads::Fibonacci(16));
  point.workload = "fib";
  runtime::SweepOutcome outcome;
  outcome.index = 0;
  outcome.kind = point.kind;
  outcome.workload = point.workload;
  const std::string bundle =
      runtime::WriteReproBundle(tmp.path(), point, outcome, nullptr);
  // Flip a byte in the framed program file.
  auto bytes = persist::ReadFileBytes(bundle + "/program.bin");
  bytes[bytes.size() / 2] ^= 0x40;
  persist::AtomicWriteFile(bundle + "/program.bin", bytes);
  EXPECT_THROW((void)runtime::ReadReproBundle(bundle), persist::FormatError);
}

}  // namespace
}  // namespace ultra
