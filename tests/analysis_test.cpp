// Tests for the table/diagram helpers and fetch engine.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis.hpp"
#include "analysis/floorplan.hpp"
#include "core/core.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

// --- Table -------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  analysis::Table table({"a", "longheader"});
  table.Row().Cell("xxxxxx").Cell(1);
  table.Row().Cell("y").Cell(2.5, 1);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("longheader"), std::string::npos);
  EXPECT_NE(out.find("xxxxxx"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  // Every line has the same length (fixed-width table).
  std::size_t pos = 0;
  std::size_t first_len = std::string::npos;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::string line = out.substr(pos, eol - pos);
    if (first_len == std::string::npos) {
      first_len = line.size();
    }
    pos = eol + 1;
  }
  EXPECT_GT(first_len, 0u);
}

TEST(Table, Humanize) {
  EXPECT_EQ(analysis::Humanize(950.0), "950.00");
  EXPECT_EQ(analysis::Humanize(1500.0), "1.50k");
  EXPECT_EQ(analysis::Humanize(2.5e6), "2.50M");
  EXPECT_EQ(analysis::Humanize(3.2e9, 1), "3.2G");
}

// --- Timing diagram -------------------------------------------------------------

TEST(TimingDiagram, RendersFigure3Shape) {
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  auto proc = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
  const auto result = proc->Run(workloads::Figure3Example());
  const std::string diagram =
      analysis::RenderTimingDiagram(result.timeline);
  // The divide occupies ten cells.
  EXPECT_NE(diagram.find("##########"), std::string::npos);
  EXPECT_NE(diagram.find("div r3, r1, r2"), std::string::npos);
  EXPECT_NE(diagram.find("(cycles)"), std::string::npos);
}

TEST(TimingDiagram, TruncatesLongTimelines) {
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  auto proc = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
  const auto result = proc->Run(workloads::Fibonacci(30));
  const std::string diagram =
      analysis::RenderTimingDiagram(result.timeline, 8);
  EXPECT_NE(diagram.find("more)"), std::string::npos);
}

TEST(TimingDiagram, EmptyTimeline) {
  EXPECT_EQ(analysis::RenderTimingDiagram({}), "(empty timeline)\n");
}

// --- Locality metric --------------------------------------------------------------

TEST(Locality, SerialChainIsFullyLocal) {
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  auto proc = core::MakeProcessor(core::ProcessorKind::kIdeal, cfg);
  const auto result = proc->Run(workloads::DependencyChains(
      {.num_instructions = 64, .ilp = 1}));
  EXPECT_NEAR(
      analysis::LocalCommunicationFraction(result.timeline, 1), 1.0, 0.05);
}

TEST(Locality, InterleavedChainsAreLocalOnlyAtTheirStride) {
  core::CoreConfig cfg;
  cfg.window_size = 32;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  auto proc = core::MakeProcessor(core::ProcessorKind::kIdeal, cfg);
  const auto result = proc->Run(workloads::DependencyChains(
      {.num_instructions = 64, .ilp = 8}));
  EXPECT_LT(analysis::LocalCommunicationFraction(result.timeline, 4), 0.2);
  EXPECT_GT(analysis::LocalCommunicationFraction(result.timeline, 8), 0.9);
}

// --- Floorplan renderings (Figures 6 and 10) ------------------------------------

TEST(Floorplan, HTreeContainsExactlyNStations) {
  for (const int n : {1, 4, 16, 64}) {
    const std::string art = analysis::RenderHTreeFloorplan(n);
    const auto stations = std::count(art.begin(), art.end(), 'S');
    EXPECT_EQ(stations, n) << art;
    if (n > 1) {
      EXPECT_NE(art.find('P'), std::string::npos);
      EXPECT_NE(art.find('M'), std::string::npos);
    }
  }
}

TEST(Floorplan, HTreeJointCountMatchesTheRecursion) {
  // An H-tree over 4^k leaves has (4^k - 1) / 3 joints.
  const std::string art = analysis::RenderHTreeFloorplan(16);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'P'), 5);
}

TEST(Floorplan, HybridContainsExactlyNStations) {
  const std::string art = analysis::RenderHybridFloorplan(32, 8);
  EXPECT_EQ(std::count(art.begin(), art.end(), 'E'), 32);
  // Each cluster's register datapath fills the triangle below the diagonal.
  EXPECT_EQ(std::count(art.begin(), art.end(), 'R'), 4 * (8 * 7) / 2);
}

// --- Fetch engine ------------------------------------------------------------------

TEST(FetchEngine, DeliversSequentialInstructions) {
  const auto program = isa::AssembleOrDie(R"(
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    halt
  )");
  core::CoreConfig cfg;
  core::FetchEngine fetch(&program, cfg,
                          std::make_unique<memory::BtfnPredictor>());
  const auto batch = fetch.FetchCycle(8);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].pc, 0u);
  EXPECT_EQ(batch[3].inst.op, isa::Opcode::kHalt);
  EXPECT_TRUE(fetch.stalled());  // Past the halt.
}

TEST(FetchEngine, StopsAtPredictedTakenBranchInBasicBlockMode) {
  const auto program = isa::AssembleOrDie(R"(
    top:
    addi r1, r1, 1
    blt r1, r2, top    # Backward: BTFN predicts taken.
    halt
  )");
  core::CoreConfig cfg;
  cfg.fetch_mode = core::FetchMode::kBasicBlock;
  core::FetchEngine fetch(&program, cfg,
                          std::make_unique<memory::BtfnPredictor>());
  const auto first = fetch.FetchCycle(8);
  ASSERT_EQ(first.size(), 2u);  // addi + the taken branch end the cycle.
  const auto second = fetch.FetchCycle(8);
  ASSERT_GE(second.size(), 1u);
  EXPECT_EQ(second[0].pc, 0u);  // Followed the predicted loop.
}

TEST(FetchEngine, RedirectDiscardsWrongPath) {
  const auto program = isa::AssembleOrDie(R"(
    addi r1, r1, 1
    addi r2, r2, 1
    halt
  )");
  core::CoreConfig cfg;
  core::FetchEngine fetch(&program, cfg,
                          std::make_unique<memory::BtfnPredictor>());
  (void)fetch.FetchCycle(1);
  fetch.Redirect(2);
  const auto batch = fetch.FetchCycle(4);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].inst.op, isa::Opcode::kHalt);
}

TEST(FetchEngine, TraceCacheWarmsUp) {
  const auto program = isa::AssembleOrDie(R"(
    top:
    addi r1, r1, 1
    blt r1, r2, top
    halt
  )");
  core::CoreConfig cfg;
  cfg.fetch_mode = core::FetchMode::kTraceCache;
  cfg.trace_branches = 3;
  core::FetchEngine fetch(&program, cfg,
                          std::make_unique<memory::BtfnPredictor>());
  // First cycles miss (basic-block fetch); later cycles hit and cross
  // multiple taken branches.
  std::size_t best = 0;
  for (int i = 0; i < 8; ++i) {
    best = std::max(best, fetch.FetchCycle(8).size());
  }
  EXPECT_GT(best, 2u);
  ASSERT_NE(fetch.trace_cache_stats(), nullptr);
  EXPECT_GT(fetch.trace_cache_stats()->hits, 0u);
}

}  // namespace
}  // namespace ultra
