// Differential tests for the incremental, allocation-free datapath
// evaluation paths: randomized mutation sequences drive a caller-owned
// state object and a plain mirror of the full-recompute inputs in
// lockstep, and after every PropagateIncremental the state's outputs must
// equal both the full Propagate and an independent program-order
// reference, element for element — including cells of stations a core
// would consider dead (docs/runtime.md, "dirty-set invariants").
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "datapath/datapath.hpp"

namespace ultra::datapath {
namespace {

// --- Ultrascalar I -----------------------------------------------------------

/// Program-order reference for the US-I ring (same walk as datapath_test).
std::vector<RegBinding> UsiReference(int n, int L,
                                     const std::vector<RegBinding>& outgoing,
                                     const std::vector<std::uint8_t>& modified,
                                     int oldest) {
  std::vector<RegBinding> incoming(static_cast<std::size_t>(n) * L);
  for (int r = 0; r < L; ++r) {
    for (int i = 0; i < n; ++i) {
      RegBinding value{};
      for (int m = 1; m <= n; ++m) {
        const int j = (i - m + n) % n;
        if (j == oldest ||
            modified[static_cast<std::size_t>(j) * L + r] != 0) {
          value = outgoing[static_cast<std::size_t>(j) * L + r];
          break;
        }
      }
      incoming[static_cast<std::size_t>(i) * L + r] = value;
    }
  }
  return incoming;
}

/// Mirror of UsiDatapathState kept as plain full-recompute inputs. The
/// station-major outgoing buffer is assembled on demand: modified cells
/// carry the station's driven value, the oldest station's unmodified cells
/// carry the committed file (the incremental path gives an explicit write
/// at the oldest priority over the committed insertion, so the mirror must
/// too), and everything else is a sentinel that must never be delivered.
struct UsiMirror {
  int n;
  int L;
  int oldest = 0;
  std::vector<RegBinding> cell;        // [i*L + r], valid when modified.
  std::vector<std::uint8_t> modified;  // [i*L + r].
  std::vector<RegBinding> committed;   // [r].

  UsiMirror(int n_in, int L_in)
      : n(n_in),
        L(L_in),
        cell(static_cast<std::size_t>(n_in) * L_in),
        modified(static_cast<std::size_t>(n_in) * L_in, 0),
        committed(static_cast<std::size_t>(L_in)) {}

  [[nodiscard]] std::vector<RegBinding> Outgoing() const {
    std::vector<RegBinding> out(static_cast<std::size_t>(n) * L,
                                RegBinding{0xDEADu, false});
    for (int i = 0; i < n; ++i) {
      for (int r = 0; r < L; ++r) {
        const std::size_t idx = static_cast<std::size_t>(i) * L + r;
        if (modified[idx]) {
          out[idx] = cell[idx];
        } else if (i == oldest) {
          out[idx] = committed[static_cast<std::size_t>(r)];
        }
      }
    }
    return out;
  }
};

RegBinding RandomBinding(std::mt19937& rng) {
  return {static_cast<isa::Word>(rng() % 10000),
          static_cast<bool>(rng() % 2)};
}

class UsiIncremental : public testing::TestWithParam<int> {};

TEST_P(UsiIncremental, MutationSequencesMatchFullPropagateAndReference) {
  const int n = GetParam();
  const int L = 5;
  std::mt19937 rng(static_cast<unsigned>(n) * 12345u + 7u);
  const UltrascalarIDatapath dp(n, L);
  UsiDatapathState state(n, L);
  UsiMirror mirror(n, L);
  for (int r = 0; r < L; ++r) {
    const RegBinding b = RandomBinding(rng);
    state.SetCommitted(r, b);
    mirror.committed[static_cast<std::size_t>(r)] = b;
  }

  std::vector<RegBinding> prev_incoming(static_cast<std::size_t>(n) * L);
  std::vector<std::uint8_t> changed(static_cast<std::size_t>(n));
  bool have_prev = false;

  for (int trial = 0; trial < 120; ++trial) {
    SCOPED_TRACE(trial);
    const int num_mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < num_mutations; ++m) {
      const int i = static_cast<int>(rng() % static_cast<unsigned>(n));
      const int r = static_cast<int>(rng() % static_cast<unsigned>(L));
      const std::size_t idx = static_cast<std::size_t>(i) * L + r;
      switch (rng() % 6) {
        case 0:
        case 1: {  // Assert a write (sometimes re-asserting the same value).
          const RegBinding b = (rng() % 4 == 0 && mirror.modified[idx])
                                   ? mirror.cell[idx]
                                   : RandomBinding(rng);
          state.SetWrite(i, r, b);
          mirror.cell[idx] = b;
          mirror.modified[idx] = 1;
          break;
        }
        case 2:  // Drop a write (possibly already absent).
          state.ClearWrite(i, r);
          mirror.modified[idx] = 0;
          break;
        case 3: {  // Committed-file update.
          const RegBinding b = RandomBinding(rng);
          state.SetCommitted(r, b);
          mirror.committed[static_cast<std::size_t>(r)] = b;
          break;
        }
        case 4:  // Oldest pointer moves (commit / wrap).
          state.SetOldest(i);
          mirror.oldest = i;
          break;
        case 5:  // Full invalidation must also converge.
          if (rng() % 8 == 0) state.MarkAllDirty();
          break;
      }
    }

    std::fill(changed.begin(), changed.end(), 0);
    dp.PropagateIncremental(state, changed);
    const auto outgoing = mirror.Outgoing();
    const auto full = dp.Propagate(outgoing, mirror.modified, mirror.oldest);
    const auto ref =
        UsiReference(n, L, outgoing, mirror.modified, mirror.oldest);
    for (int i = 0; i < n; ++i) {
      bool any_changed = false;
      for (int r = 0; r < L; ++r) {
        const std::size_t idx = static_cast<std::size_t>(i) * L + r;
        SCOPED_TRACE("station " + std::to_string(i) + " reg " +
                     std::to_string(r));
        ASSERT_EQ(state.incoming(i, r), full[idx]);
        ASSERT_EQ(full[idx], ref[idx]);
        if (have_prev && !(prev_incoming[idx] == state.incoming(i, r))) {
          any_changed = true;
        }
        prev_incoming[idx] = state.incoming(i, r);
      }
      // changed_stations must flag exactly the stations whose delivered
      // values moved (the hybrid datapath skips unflagged clusters).
      if (have_prev) {
        ASSERT_EQ(changed[static_cast<std::size_t>(i)] != 0, any_changed);
      }
    }
    have_prev = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UsiIncremental,
                         testing::Values(1, 2, 3, 4, 8, 16, 33),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(UsiIncremental, SetStationWriteRetargetsCleanly) {
  // A station that switches destination register must clear its old column.
  const int n = 4;
  const int L = 3;
  const UltrascalarIDatapath dp(n, L);
  UsiDatapathState state(n, L);
  for (int r = 0; r < L; ++r) state.SetCommitted(r, {100u + r, true});
  state.SetStationWrite(1, true, 0, {7, true});
  dp.PropagateIncremental(state);
  EXPECT_EQ(state.incoming(2, 0), (RegBinding{7, true}));
  state.SetStationWrite(1, true, 2, {9, true});  // Retarget r0 -> r2.
  dp.PropagateIncremental(state);
  EXPECT_EQ(state.incoming(2, 0), (RegBinding{100, true}));
  EXPECT_EQ(state.incoming(2, 2), (RegBinding{9, true}));
  state.SetStationWrite(1, false, 0, {});  // Squash: no write at all.
  dp.PropagateIncremental(state);
  EXPECT_EQ(state.incoming(2, 2), (RegBinding{102, true}));
}

// --- Ultrascalar II ----------------------------------------------------------

StationRequest RandomRequest(std::mt19937& rng, int L) {
  StationRequest s;
  s.reads1 = rng() % 2;
  s.arg1 = static_cast<isa::RegId>(rng() % static_cast<unsigned>(L));
  s.reads2 = rng() % 2;
  s.arg2 = static_cast<isa::RegId>(rng() % static_cast<unsigned>(L));
  s.writes = rng() % 2;
  s.dest = static_cast<isa::RegId>(rng() % static_cast<unsigned>(L));
  s.result = RandomBinding(rng);
  return s;
}

TEST(UsiiIncremental, PropagateIntoMatchesPropagateAcrossReusedBuffer) {
  const int n = 12;
  const int L = 6;
  std::mt19937 rng(2024);
  const UltrascalarIIDatapath dp(n, L);
  // One output buffer reused across every trial: stale contents from the
  // previous iteration (e.g. args of stations that no longer read) must
  // never leak through.
  UsiiPropagation into;
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE(trial);
    std::vector<RegBinding> regfile(static_cast<std::size_t>(L));
    for (auto& b : regfile) b = RandomBinding(rng);
    std::vector<StationRequest> stations(static_cast<std::size_t>(n));
    for (auto& s : stations) s = RandomRequest(rng, L);
    const auto full = dp.Propagate(regfile, stations);
    dp.PropagateInto(regfile, stations, into);
    ASSERT_EQ(into.args.size(), full.args.size());
    ASSERT_EQ(into.final_regs.size(), full.final_regs.size());
    for (int i = 0; i < n; ++i) {
      SCOPED_TRACE(i);
      ASSERT_EQ(into.args[static_cast<std::size_t>(i)],
                full.args[static_cast<std::size_t>(i)]);
    }
    for (int r = 0; r < L; ++r) {
      SCOPED_TRACE(r);
      ASSERT_EQ(into.final_regs[static_cast<std::size_t>(r)],
                full.final_regs[static_cast<std::size_t>(r)]);
    }
  }
}

// --- Hybrid ------------------------------------------------------------------

class HybridIncremental
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HybridIncremental, MutationSequencesMatchFullPropagate) {
  const auto [num_clusters, cluster_size] = GetParam();
  const int n = num_clusters * cluster_size;
  const int L = 5;
  std::mt19937 rng(static_cast<unsigned>(n) * 97u + cluster_size);
  const HybridDatapath dp(n, L, cluster_size);
  HybridDatapathState state(n, L, cluster_size);

  // Plain mirror of the full-recompute inputs.
  std::vector<RegBinding> committed(static_cast<std::size_t>(L));
  std::vector<StationRequest> stations(static_cast<std::size_t>(n));
  int oldest_cluster = 0;
  for (int r = 0; r < L; ++r) {
    const RegBinding b = RandomBinding(rng);
    state.SetCommitted(r, b);
    committed[static_cast<std::size_t>(r)] = b;
  }

  for (int trial = 0; trial < 120; ++trial) {
    SCOPED_TRACE(trial);
    const int num_mutations = 1 + static_cast<int>(rng() % 8);
    for (int m = 0; m < num_mutations; ++m) {
      const int i = static_cast<int>(rng() % static_cast<unsigned>(n));
      switch (rng() % 5) {
        case 0:
        case 1: {  // Replace a station request (sometimes with itself).
          const StationRequest s =
              rng() % 4 == 0 ? stations[static_cast<std::size_t>(i)]
                             : RandomRequest(rng, L);
          state.SetStation(i, s);
          stations[static_cast<std::size_t>(i)] = s;
          break;
        }
        case 2: {  // Committed-file update.
          const int r = static_cast<int>(rng() % static_cast<unsigned>(L));
          const RegBinding b = RandomBinding(rng);
          state.SetCommitted(r, b);
          committed[static_cast<std::size_t>(r)] = b;
          break;
        }
        case 3: {  // Oldest cluster advances.
          const int k = static_cast<int>(
              rng() % static_cast<unsigned>(num_clusters));
          state.SetOldestCluster(k);
          oldest_cluster = k;
          break;
        }
        case 4:
          if (rng() % 8 == 0) state.MarkAllDirty();
          break;
      }
    }

    dp.PropagateIncremental(state);
    const auto full = dp.Propagate(committed, stations, oldest_cluster);
    for (int i = 0; i < n; ++i) {
      SCOPED_TRACE("station " + std::to_string(i));
      ASSERT_EQ(state.args(i), full.args[static_cast<std::size_t>(i)]);
    }
    for (int k = 0; k < num_clusters; ++k) {
      for (int r = 0; r < L; ++r) {
        SCOPED_TRACE("cluster " + std::to_string(k) + " reg " +
                     std::to_string(r));
        ASSERT_EQ(state.cluster_in(k, r),
                  full.cluster_in[static_cast<std::size_t>(k) * L + r]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HybridIncremental,
    testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 4),
                    std::make_tuple(4, 1), std::make_tuple(3, 5),
                    std::make_tuple(4, 8), std::make_tuple(8, 4)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ultra::datapath
