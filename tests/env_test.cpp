// Tests for the strict environment-variable parsing shared by the tuning
// knobs (core/env.hpp): garbage and out-of-range values must be rejected
// (with a one-time warning), not silently truncated the way atoi/atol did.
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/env.hpp"

namespace ultra::core {
namespace {

class ParseEnvIntTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetEnvWarningsForTest(); }
  void TearDown() override {
    ::unsetenv(kVar);
    ResetEnvWarningsForTest();
  }
  static constexpr const char* kVar = "ULTRA_TEST_ENV_INT";
  static void Put(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(ParseEnvIntTest, UnsetReturnsNullopt) {
  ::unsetenv(kVar);
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
}

TEST_F(ParseEnvIntTest, ParsesPlainIntegers) {
  Put("8");
  EXPECT_EQ(ParseEnvInt(kVar, 1, 100), 8);
  Put("100");
  EXPECT_EQ(ParseEnvInt(kVar, 1, 100), 100);
  Put("-3");
  EXPECT_EQ(ParseEnvInt(kVar, -10, 100), -3);
}

TEST_F(ParseEnvIntTest, RejectsTrailingGarbage) {
  // atoi("8abc") == 8; the strict parser must refuse it.
  Put("8abc");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("8 ");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put(" 8");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
}

TEST_F(ParseEnvIntTest, RejectsNonNumbers) {
  Put("");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("many");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("0x10");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
}

TEST_F(ParseEnvIntTest, EnforcesRange) {
  Put("0");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("-5");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("101");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("99999999999999999999999");  // Overflows long long entirely.
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
}

TEST_F(ParseEnvIntTest, WarningDoesNotStickAcrossValues) {
  // The warning latch is once per variable, but parsing keeps working.
  Put("junk");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
  Put("7");
  EXPECT_EQ(ParseEnvInt(kVar, 1, 100), 7);
  Put("junk2");
  EXPECT_FALSE(ParseEnvInt(kVar, 1, 100).has_value());
}

}  // namespace
}  // namespace ultra::core
