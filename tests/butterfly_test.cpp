// Tests for the butterfly network and the kButterfly memory-system mode.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/core.hpp"
#include "memory/memory.hpp"
#include "workloads/workloads.hpp"

namespace ultra::memory {
namespace {

TEST(Butterfly, SingleMessageTakesOneCyclePerStage) {
  ButterflyNetwork net(16);
  EXPECT_EQ(net.stages(), 4);
  net.SubmitForward(5, 11, 77);
  int cycles = 0;
  std::vector<ButterflyNetwork::Arrival> got;
  while (got.empty() && cycles < 20) {
    net.Tick();
    ++cycles;
    got = net.DrainForward();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].port, 11);
  EXPECT_EQ(got[0].id, 77u);
  EXPECT_EQ(cycles, net.stages());
}

TEST(Butterfly, EverySourceReachesEveryDestination) {
  const int n = 8;
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      ButterflyNetwork net(n);
      net.SubmitForward(src, dst, 1);
      std::vector<ButterflyNetwork::Arrival> got;
      for (int i = 0; i < 10 && got.empty(); ++i) {
        net.Tick();
        got = net.DrainForward();
      }
      ASSERT_EQ(got.size(), 1u) << src << "->" << dst;
      EXPECT_EQ(got[0].port, dst) << src << "->" << dst;
    }
  }
}

TEST(Butterfly, ReverseDirectionRoutesToLeaves) {
  ButterflyNetwork net(8);
  net.SubmitReverse(2, 6, 9);
  std::vector<ButterflyNetwork::Arrival> got;
  for (int i = 0; i < 10 && got.empty(); ++i) {
    net.Tick();
    got = net.DrainReverse();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].port, 6);
}

TEST(Butterfly, UniformTrafficFlowsAtFullBandwidth) {
  // A permutation without shared links (identity) drains in stages cycles.
  const int n = 16;
  ButterflyNetwork net(n);
  for (int i = 0; i < n; ++i) {
    net.SubmitForward(i, i, static_cast<std::uint64_t>(i));
  }
  int cycles = 0;
  std::size_t total = 0;
  while (total < static_cast<std::size_t>(n) && cycles < 100) {
    net.Tick();
    ++cycles;
    total += net.DrainForward().size();
  }
  EXPECT_EQ(cycles, net.stages());
}

TEST(Butterfly, HotSpotTrafficSerializesOnTheSharedLink) {
  // Everyone targets bank 0: the last link admits one message per cycle.
  const int n = 16;
  ButterflyNetwork net(n);
  for (int i = 0; i < n; ++i) {
    net.SubmitForward(i, 0, static_cast<std::uint64_t>(i));
  }
  int cycles = 0;
  std::size_t total = 0;
  while (total < static_cast<std::size_t>(n) && cycles < 200) {
    net.Tick();
    ++cycles;
    total += net.DrainForward().size();
  }
  EXPECT_GE(cycles, n / 2);  // Far slower than the permutation case.
}

TEST(Butterfly, ManyRandomMessagesAllArriveExactlyOnce) {
  const int n = 32;
  ButterflyNetwork net(n);
  std::mt19937 rng(9);
  std::set<std::uint64_t> outstanding;
  std::vector<int> expected_port(400);
  for (std::uint64_t id = 0; id < 400; ++id) {
    const int src = static_cast<int>(rng() % n);
    const int dst = static_cast<int>(rng() % n);
    expected_port[id] = dst;
    net.SubmitForward(src, dst, id);
    outstanding.insert(id);
  }
  for (int i = 0; i < 1000 && !outstanding.empty(); ++i) {
    net.Tick();
    for (const auto& a : net.DrainForward()) {
      ASSERT_EQ(outstanding.erase(a.id), 1u);
      EXPECT_EQ(a.port, expected_port[a.id]);
    }
  }
  EXPECT_TRUE(outstanding.empty());
}

TEST(ButterflyMemory, LoadsCompleteWithCorrectValues) {
  MemoryConfig cfg;
  cfg.mode = MemTimingMode::kButterfly;
  MemorySystem mem(cfg, 16);
  mem.Reset({{40, 7}, {80, 9}});
  const auto a = mem.SubmitLoad(3, 40);
  const auto b = mem.SubmitLoad(9, 80);
  std::set<std::uint64_t> pending = {a, b};
  for (int i = 0; i < 100 && !pending.empty(); ++i) {
    mem.Tick();
    for (const auto& r : mem.DrainCompleted()) {
      pending.erase(r.id);
      if (r.id == a) {
        EXPECT_EQ(r.value, 7u);
      }
      if (r.id == b) {
        EXPECT_EQ(r.value, 9u);
      }
    }
  }
  EXPECT_TRUE(pending.empty());
}

TEST(ButterflyMemory, CoresRunCorrectlyOverTheButterfly) {
  const auto program = workloads::MemCopy(24);
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 4;
  cfg.mem.mode = MemTimingMode::kButterfly;
  core::FunctionalSimulator fn;
  const auto ref = fn.Run(program);
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    SCOPED_TRACE(core::ProcessorKindName(kind));
    auto proc = core::MakeProcessor(kind, cfg);
    const auto result = proc->Run(program);
    ASSERT_TRUE(result.halted);
    for (std::size_t r = 0; r < ref.regs.size(); ++r) {
      ASSERT_EQ(result.regs[r], ref.regs[r]);
    }
  }
}

}  // namespace
}  // namespace ultra::memory
