// Tests for the three register datapaths: the Figure 1 worked example,
// randomized equivalence against program-order references, sequencing
// circuits, and gate-depth shapes.
#include <gtest/gtest.h>

#include <random>

#include "datapath/datapath.hpp"

namespace ultra::datapath {
namespace {

// --- Ultrascalar I: the Figure 1 snapshot ------------------------------------

TEST(UltrascalarI, Figure1Snapshot) {
  // Ring for register R0, eight stations, station 6 oldest.
  // Oldest inserts the initial value 10 (ready). Station 7 writes R0 but
  // has not computed (ready=0). Station 4 writes R0 = 42 (ready).
  const int n = 8;
  const int L = 1;
  UltrascalarIDatapath dp(n, L);
  std::vector<RegBinding> outgoing(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> modified(static_cast<std::size_t>(n), 0);
  outgoing[6] = {10, true};   // Committed file inserted by the oldest.
  outgoing[7] = {0, false};   // Not yet computed.
  modified[7] = 1;
  outgoing[4] = {42, true};
  modified[4] = 1;
  const auto incoming = dp.Propagate(outgoing, modified, /*oldest=*/6);

  // "Stations 0-4": the value of R0 is not yet ready (from station 7).
  for (const int i : {0, 1, 2, 3, 4}) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(incoming[static_cast<std::size_t>(i)].ready);
  }
  // Stations 5 and 6 see 42, ready (from station 4).
  EXPECT_TRUE(incoming[5].ready);
  EXPECT_EQ(incoming[5].value, 42u);
  EXPECT_TRUE(incoming[6].ready);
  EXPECT_EQ(incoming[6].value, 42u);
  // Station 7 sees the initial value from the oldest station.
  EXPECT_TRUE(incoming[7].ready);
  EXPECT_EQ(incoming[7].value, 10u);
}

TEST(UltrascalarI, OldestStationModifiedBitsAreForced) {
  // Even with no station writing anything, every station receives the
  // committed value inserted by the oldest.
  const int n = 4;
  const int L = 2;
  UltrascalarIDatapath dp(n, L);
  std::vector<RegBinding> outgoing(static_cast<std::size_t>(n * L));
  std::vector<std::uint8_t> modified(static_cast<std::size_t>(n * L), 0);
  outgoing[2 * L + 0] = {111, true};  // Oldest = 2, register 0.
  outgoing[2 * L + 1] = {222, true};
  const auto incoming = dp.Propagate(outgoing, modified, 2);
  for (const int i : {3, 0, 1}) {
    EXPECT_EQ(incoming[static_cast<std::size_t>(i * L)].value, 111u);
    EXPECT_EQ(incoming[static_cast<std::size_t>(i * L + 1)].value, 222u);
  }
}

/// Program-order reference for the US-I ring.
std::vector<RegBinding> UsiReference(int n, int L,
                                     const std::vector<RegBinding>& outgoing,
                                     const std::vector<std::uint8_t>& modified,
                                     int oldest) {
  std::vector<RegBinding> incoming(static_cast<std::size_t>(n) * L);
  for (int r = 0; r < L; ++r) {
    for (int i = 0; i < n; ++i) {
      // Walk backward (cyclically) to the nearest modifier; the oldest
      // station's forced modified bit terminates the walk. Note the oldest
      // itself receives the wrap-around value (which the cores ignore).
      RegBinding value{};
      for (int m = 1; m <= n; ++m) {
        const int j = (i - m + n) % n;
        if (j == oldest ||
            modified[static_cast<std::size_t>(j) * L + r] != 0) {
          value = outgoing[static_cast<std::size_t>(j) * L + r];
          break;
        }
      }
      incoming[static_cast<std::size_t>(i) * L + r] = value;
    }
  }
  return incoming;
}

class UsiRandom : public testing::TestWithParam<int> {};

TEST_P(UsiRandom, PropagateMatchesReference) {
  const int n = GetParam();
  const int L = 4;
  std::mt19937 rng(static_cast<unsigned>(n) * 7919);
  UltrascalarIDatapath dp(n, L);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<RegBinding> outgoing(static_cast<std::size_t>(n) * L);
    std::vector<std::uint8_t> modified(static_cast<std::size_t>(n) * L, 0);
    for (auto& b : outgoing) {
      b.value = rng() % 1000;
      b.ready = rng() % 2;
    }
    for (auto& m : modified) m = (rng() % 3) == 0;
    const int oldest = static_cast<int>(rng() % static_cast<unsigned>(n));
    const auto got = dp.Propagate(outgoing, modified, oldest);
    const auto want = UsiReference(n, L, outgoing, modified, oldest);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t idx = 0; idx < got.size(); ++idx) {
      SCOPED_TRACE(idx);
      EXPECT_EQ(got[idx], want[idx]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UsiRandom,
                         testing::Values(1, 2, 3, 4, 8, 16, 33, 64),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// --- Sequencing CSPPs ---------------------------------------------------------

TEST(Sequencing, AllPrecedingSatisfyMatchesManualWalk) {
  const int n = 8;
  SequencingCspp seq(n);
  const std::vector<std::uint8_t> cond = {1, 1, 0, 1, 0, 0, 1, 1};
  const auto out = seq.AllPrecedingSatisfy(cond, /*oldest=*/6);
  // Same as the Figure 5 example in circuit_test.
  EXPECT_TRUE(out[7]);
  EXPECT_TRUE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_TRUE(out[2]);
  EXPECT_FALSE(out[3]);
  EXPECT_FALSE(out[4]);
  EXPECT_FALSE(out[5]);
}

TEST(Sequencing, AnyPrecedingSatisfies) {
  const int n = 6;
  SequencingCspp seq(n);
  const std::vector<std::uint8_t> cond = {0, 0, 1, 0, 0, 0};
  const auto out = seq.AnyPrecedingSatisfies(cond, /*oldest=*/0);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_TRUE(out[3]);
  EXPECT_TRUE(out[4]);
  EXPECT_TRUE(out[5]);
}

TEST(Sequencing, AcyclicVariantIsVacuouslyTrueAtPositionZero) {
  const std::vector<std::uint8_t> cond = {0, 1, 1};
  const auto out = AllPrecedingSatisfyAcyclic(cond);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);  // Position 0 is unsatisfied.
  EXPECT_FALSE(out[2]);
}

TEST(Sequencing, TreeDepthIsLogarithmic) {
  const std::vector<std::uint8_t> cond(1024, 1);
  const SequencingCspp tree(1024, PrefixImpl::kTree);
  const SequencingCspp ring(1024, PrefixImpl::kRing);
  EXPECT_LE(tree.MeasureGateDepth(cond, 0), 60);
  EXPECT_GE(ring.MeasureGateDepth(cond, 0), 1023);
}

// --- Ultrascalar II ------------------------------------------------------------

StationRequest Req(bool r1, isa::RegId a1, bool r2, isa::RegId a2, bool w,
                   isa::RegId d, RegBinding result = {}) {
  StationRequest req;
  req.reads1 = r1;
  req.arg1 = a1;
  req.reads2 = r2;
  req.arg2 = a2;
  req.writes = w;
  req.dest = d;
  req.result = result;
  return req;
}

TEST(UltrascalarII, Figure7Example) {
  // Station 3's left column searches for R2: station 2 wrote R2 = 9
  // (finished), station 0 wrote R2 but is unfinished; the nearest match
  // wins, so station 3 reads 9, ready -- issuing out of order.
  const int n = 4;
  const int L = 4;
  UltrascalarIIDatapath dp(n, L);
  std::vector<RegBinding> regfile(static_cast<std::size_t>(L));
  for (int r = 0; r < L; ++r) regfile[static_cast<std::size_t>(r)] = {
      static_cast<isa::Word>(100 + r), true};
  std::vector<StationRequest> stations(static_cast<std::size_t>(n));
  stations[0] = Req(false, 0, false, 0, true, 2, {0, false});  // R2 pending.
  stations[1] = Req(false, 0, false, 0, true, 1, {7, true});   // R1 = 7.
  stations[2] = Req(false, 0, false, 0, true, 2, {9, true});   // R2 = 9.
  stations[3] = Req(true, 2, true, 1, false, 0);
  const auto prop = dp.Propagate(regfile, stations);
  EXPECT_TRUE(prop.args[3].arg1.ready);
  EXPECT_EQ(prop.args[3].arg1.value, 9u);
  EXPECT_TRUE(prop.args[3].arg2.ready);
  EXPECT_EQ(prop.args[3].arg2.value, 7u);
  // Outgoing register file: R1 and R2 from stations, R0/R3 from the file.
  EXPECT_EQ(prop.final_regs[0].value, 100u);
  EXPECT_EQ(prop.final_regs[1].value, 7u);
  EXPECT_EQ(prop.final_regs[2].value, 9u);
  EXPECT_TRUE(prop.final_regs[2].ready);
  EXPECT_EQ(prop.final_regs[3].value, 103u);
}

TEST(UltrascalarII, UnwrittenArgFallsBackToRegfile) {
  const int n = 2;
  const int L = 2;
  UltrascalarIIDatapath dp(n, L);
  std::vector<RegBinding> regfile = {{5, true}, {6, true}};
  std::vector<StationRequest> stations(2);
  stations[0] = Req(true, 1, false, 0, true, 0, {50, true});
  stations[1] = Req(true, 0, true, 1, false, 0);
  const auto prop = dp.Propagate(regfile, stations);
  EXPECT_EQ(prop.args[0].arg1.value, 6u);   // From the register file.
  EXPECT_EQ(prop.args[1].arg1.value, 50u);  // From station 0.
  EXPECT_EQ(prop.args[1].arg2.value, 6u);
}

TEST(UltrascalarII, SquashedStationContributesNothing) {
  const int n = 3;
  const int L = 1;
  UltrascalarIIDatapath dp(n, L);
  std::vector<RegBinding> regfile = {{1, true}};
  std::vector<StationRequest> stations(3);
  stations[0] = Req(false, 0, false, 0, true, 0, {99, true});
  stations[1] = StationRequest{};  // Squashed: writes == false.
  stations[2] = Req(true, 0, false, 0, false, 0);
  const auto prop = dp.Propagate(regfile, stations);
  EXPECT_EQ(prop.args[2].arg1.value, 99u);
}

TEST(UltrascalarII, GateDepthGridLinearMeshLogarithmic) {
  const int L = 32;
  const UltrascalarIIDatapath grid_small(64, L, UsiiImpl::kGrid);
  const UltrascalarIIDatapath grid_large(512, L, UsiiImpl::kGrid);
  const UltrascalarIIDatapath mesh_small(64, L, UsiiImpl::kMeshOfTrees);
  const UltrascalarIIDatapath mesh_large(512, L, UsiiImpl::kMeshOfTrees);
  const int g1 = grid_small.WorstCaseGateDepth();
  const int g2 = grid_large.WorstCaseGateDepth();
  const int m1 = mesh_small.WorstCaseGateDepth();
  const int m2 = mesh_large.WorstCaseGateDepth();
  EXPECT_NEAR(static_cast<double>(g2) / g1, (512.0 + L) / (64 + L), 0.2);
  // Four logarithmic stages (two fan-outs, comparator, reduction tree) each
  // grow by ~3 levels when n goes 64 -> 512.
  EXPECT_LE(m2 - m1, 20);
  EXPECT_LT(m2, g2 / 4);
}

// --- Hybrid ---------------------------------------------------------------------

/// Program-order reference: the hybrid's argument resolution must equal
/// "nearest preceding writer in program order, else the committed file".
RegBinding FlatResolve(const std::vector<StationRequest>& program_order,
                       std::size_t pos, isa::RegId reg,
                       const std::vector<RegBinding>& committed) {
  for (std::size_t j = pos; j-- > 0;) {
    if (program_order[j].writes && program_order[j].dest == reg) {
      return program_order[j].result;
    }
  }
  return committed[reg];
}

class HybridRandom : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HybridRandom, MatchesFlatProgramOrderResolution) {
  const auto [num_clusters, cluster_size] = GetParam();
  const int n = num_clusters * cluster_size;
  const int L = 6;
  std::mt19937 rng(static_cast<unsigned>(n) * 31 + cluster_size);
  HybridDatapath dp(n, L, cluster_size);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<RegBinding> committed(static_cast<std::size_t>(L));
    for (int r = 0; r < L; ++r) {
      committed[static_cast<std::size_t>(r)] = {
          static_cast<isa::Word>(1000 + r), true};
    }
    const int oldest = static_cast<int>(rng() % static_cast<unsigned>(
                                            num_clusters));
    std::vector<StationRequest> stations(static_cast<std::size_t>(n));
    for (auto& s : stations) {
      s.reads1 = rng() % 2;
      s.arg1 = static_cast<isa::RegId>(rng() % L);
      s.reads2 = rng() % 2;
      s.arg2 = static_cast<isa::RegId>(rng() % L);
      s.writes = rng() % 2;
      s.dest = static_cast<isa::RegId>(rng() % L);
      s.result = {static_cast<isa::Word>(rng() % 10000),
                  static_cast<bool>(rng() % 2)};
    }
    const auto prop = dp.Propagate(committed, stations, oldest);

    // Build the flattened program order: clusters from the oldest, stations
    // in index order within each cluster.
    std::vector<StationRequest> program_order;
    std::vector<int> station_of_pos;
    for (int k = 0; k < num_clusters; ++k) {
      const int cluster = (oldest + k) % num_clusters;
      for (int s = 0; s < cluster_size; ++s) {
        const int idx = cluster * cluster_size + s;
        program_order.push_back(stations[static_cast<std::size_t>(idx)]);
        station_of_pos.push_back(idx);
      }
    }
    for (std::size_t pos = 0; pos < program_order.size(); ++pos) {
      const int idx = station_of_pos[pos];
      const auto& req = program_order[pos];
      if (req.reads1) {
        SCOPED_TRACE(pos);
        EXPECT_EQ(prop.args[static_cast<std::size_t>(idx)].arg1,
                  FlatResolve(program_order, pos, req.arg1, committed));
      }
      if (req.reads2) {
        SCOPED_TRACE(pos);
        EXPECT_EQ(prop.args[static_cast<std::size_t>(idx)].arg2,
                  FlatResolve(program_order, pos, req.arg2, committed));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HybridRandom,
    testing::Values(std::make_tuple(1, 4), std::make_tuple(2, 4),
                    std::make_tuple(4, 4), std::make_tuple(4, 8),
                    std::make_tuple(8, 2), std::make_tuple(2, 16)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Hybrid, GateDepthDominatedByClusterTerm) {
  // Theta(L + log n): doubling n barely moves it; doubling L moves it a lot.
  const HybridDatapath small_n(256, 32, 32);
  const HybridDatapath large_n(1024, 32, 32);
  const HybridDatapath large_l(256, 64, 64);
  const int dn1 = small_n.WorstCaseGateDepth();
  const int dn2 = large_n.WorstCaseGateDepth();
  const int dl2 = large_l.WorstCaseGateDepth();
  EXPECT_LE(dn2 - dn1, 10);
  EXPECT_GT(dl2, dn1 + 32);
}

}  // namespace
}  // namespace ultra::datapath
