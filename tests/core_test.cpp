// Cross-processor correctness and timing-equivalence tests.
//
// Every processor must (a) reproduce the functional simulator's
// architectural state, and (b) -- for the Ultrascalar I and the hybrid with
// ample window -- reproduce the ideal out-of-order baseline's timing cycle
// for cycle (the paper's central functional claim, Figures 1-3).
#include <gtest/gtest.h>

#include "core/core.hpp"

namespace ultra::core {
namespace {

constexpr const char* kFigure3Program = R"(
  # The paper's eight-instruction example (Section 2), stations 6,7,0..5.
  div r3, r1, r2
  add r0, r0, r3
  add r1, r5, r6
  add r1, r0, r1
  mul r2, r5, r6
  add r2, r2, r4
  sub r0, r5, r6
  add r4, r0, r7
  halt
)";

isa::Program Fig3() {
  auto p = isa::AssembleOrDie(kFigure3Program);
  return p;
}

CoreConfig DefaultConfig() {
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  return cfg;
}

RunResult RunOn(ProcessorKind kind, const isa::Program& program,
                const CoreConfig& cfg) {
  auto proc = MakeProcessor(kind, cfg);
  auto result = proc->Run(program);
  EXPECT_TRUE(result.halted) << ProcessorKindName(kind) << " did not halt";
  return result;
}

void ExpectMatchesFunctional(const isa::Program& program,
                             const RunResult& result, int num_regs) {
  FunctionalSimulator fn(num_regs);
  const auto ref = fn.Run(program);
  ASSERT_EQ(result.regs.size(), ref.regs.size());
  for (std::size_t r = 0; r < ref.regs.size(); ++r) {
    EXPECT_EQ(result.regs[r], ref.regs[r]) << "register r" << r;
  }
  EXPECT_EQ(result.committed, ref.instructions);
}

// --- Figure 3: the paper's worked example ----------------------------------

TEST(Figure3, FunctionalStateIsCorrectEverywhere) {
  const auto program = Fig3();
  const auto cfg = DefaultConfig();
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunOn(kind, program, cfg);
    ExpectMatchesFunctional(program, result, cfg.num_regs);
  }
}

TEST(Figure3, IssueTimesMatchThePaperTimingDiagram) {
  // Relative issue times from Figure 3 (div=10, mul=3, add=1):
  //   div @0, add(r0) @10, add(r1) @0, add(r1) @11, mul @0, add(r2) @3,
  //   sub @0, add(r4) @1.
  const std::vector<std::uint64_t> expected_issue = {0, 10, 0, 11, 0, 3, 0, 1};
  const std::vector<std::uint64_t> expected_complete = {9, 10, 0, 11, 2, 3,
                                                        0, 1};
  const auto program = Fig3();
  const auto cfg = DefaultConfig();
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunOn(kind, program, cfg);
    ASSERT_EQ(result.timeline.size(), 9u);  // 8 ops + halt.
    const std::uint64_t t0 = result.timeline.front().issue_cycle;
    for (std::size_t k = 0; k < 8; ++k) {
      SCOPED_TRACE(k);
      EXPECT_EQ(result.timeline[k].issue_cycle - t0, expected_issue[k]);
      EXPECT_EQ(result.timeline[k].complete_cycle - t0,
                expected_complete[k]);
    }
  }
}

// --- Architectural correctness on a battery of programs ---------------------

struct ProgramCase {
  const char* name;
  const char* source;
};

class AllProcessors
    : public testing::TestWithParam<std::tuple<ProcessorKind, ProgramCase>> {
};

TEST_P(AllProcessors, MatchesFunctionalSimulator) {
  const auto [kind, pc] = GetParam();
  const auto program = isa::AssembleOrDie(pc.source);
  auto cfg = DefaultConfig();
  const auto result = RunOn(kind, program, cfg);
  ExpectMatchesFunctional(program, result, cfg.num_regs);
}

constexpr ProgramCase kPrograms[] = {
    {"straightline", R"(
      li r1, 7
      li r2, 9
      mul r3, r1, r2
      add r4, r3, r1
      sub r5, r3, r2
      div r6, r3, r1
      rem r7, r3, r2
      xor r8, r4, r5
      halt
    )"},
    {"loop_sum", R"(
      li r1, 0      # sum
      li r2, 1      # i
      li r3, 11     # bound
      loop:
      add r1, r1, r2
      addi r2, r2, 1
      blt r2, r3, loop
      halt
    )"},
    {"memory_roundtrip", R"(
      li r1, 100    # base
      li r2, 42
      st r2, 0(r1)
      st r2, 4(r1)
      ld r3, 0(r1)
      add r4, r3, r2
      st r4, 8(r1)
      ld r5, 8(r1)
      halt
    )"},
    {"store_load_dependency", R"(
      li r1, 64
      li r2, 5
      st r2, 0(r1)
      ld r3, 0(r1)
      addi r3, r3, 1
      st r3, 0(r1)
      ld r4, 0(r1)
      halt
    )"},
    {"branch_not_taken_mispredicts", R"(
      # BTFN predicts the forward branch not taken; it is taken.
      li r1, 1
      li r2, 1
      beq r1, r2, skip
      li r3, 111    # wrong path
      skip:
      li r4, 222
      halt
    )"},
    {"nested_loops", R"(
      li r1, 0      # acc
      li r2, 0      # i
      li r5, 3      # outer bound
      outer:
      li r3, 0      # j
      li r6, 4      # inner bound
      inner:
      add r1, r1, r3
      addi r3, r3, 1
      blt r3, r6, inner
      addi r2, r2, 1
      blt r2, r5, outer
      halt
    )"},
    {"jal_and_jmp", R"(
      li r1, 5
      jal r31, func
      add r3, r1, r1
      halt
      func:
      addi r1, r1, 10
      add r30, r31, r0
      jmp 2         # Return to "add r3, r1, r1".
    )"},
    {"division_edge_cases", R"(
      li r1, -2147483648
      li r2, -1
      div r3, r1, r2
      rem r4, r1, r2
      li r5, 17
      li r6, 0
      div r7, r5, r6
      rem r8, r5, r6
      halt
    )"},
    {"memory_indexed_sum", R"(
      .word 0 10
      .word 4 20
      .word 8 30
      .word 12 40
      li r1, 0      # base
      li r2, 0      # sum
      li r3, 0      # i
      li r4, 4      # count
      loop:
      slli r5, r3, 2
      add r5, r5, r1
      ld r6, 0(r5)
      add r2, r2, r6
      addi r3, r3, 1
      blt r3, r4, loop
      halt
    )"},
    {"alternating_branch_storm", R"(
      li r1, 0      # i
      li r2, 12    # bound
      li r3, 0      # acc
      loop:
      andi r4, r1, 1
      li r5, 0
      beq r4, r5, even
      addi r3, r3, 100
      jmp next
      even:
      addi r3, r3, 1
      next:
      addi r1, r1, 1
      blt r1, r2, loop
      halt
    )"},
};

INSTANTIATE_TEST_SUITE_P(
    Battery, AllProcessors,
    testing::Combine(testing::Values(ProcessorKind::kIdeal,
                                     ProcessorKind::kUltrascalarI,
                                     ProcessorKind::kUltrascalarII,
                                     ProcessorKind::kHybrid),
                     testing::ValuesIn(kPrograms)),
    [](const auto& info) {
      return std::string(ProcessorKindName(std::get<0>(info.param))) + "_" +
             std::get<1>(info.param).name;
    });

// --- Cycle-level equivalence -------------------------------------------------

class TimingEquivalence : public testing::TestWithParam<ProgramCase> {};

TEST_P(TimingEquivalence, UltrascalarIMatchesIdealCycleForCycle) {
  const auto program = isa::AssembleOrDie(GetParam().source);
  auto cfg = DefaultConfig();
  cfg.window_size = 64;  // Ample window: the dataflow limit governs.
  const auto ideal = RunOn(ProcessorKind::kIdeal, program, cfg);
  const auto usi = RunOn(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_EQ(usi.cycles, ideal.cycles);
  ASSERT_EQ(usi.timeline.size(), ideal.timeline.size());
  for (std::size_t k = 0; k < ideal.timeline.size(); ++k) {
    SCOPED_TRACE(k);
    EXPECT_EQ(usi.timeline[k].pc, ideal.timeline[k].pc);
    EXPECT_EQ(usi.timeline[k].issue_cycle, ideal.timeline[k].issue_cycle);
    EXPECT_EQ(usi.timeline[k].complete_cycle,
              ideal.timeline[k].complete_cycle);
    EXPECT_EQ(usi.timeline[k].commit_cycle, ideal.timeline[k].commit_cycle);
  }
}

TEST_P(TimingEquivalence, HybridMatchesIdealIssueTimes) {
  const auto program = isa::AssembleOrDie(GetParam().source);
  auto cfg = DefaultConfig();
  cfg.window_size = 64;
  cfg.cluster_size = 8;
  const auto ideal = RunOn(ProcessorKind::kIdeal, program, cfg);
  const auto hybrid = RunOn(ProcessorKind::kHybrid, program, cfg);
  ASSERT_EQ(hybrid.timeline.size(), ideal.timeline.size());
  for (std::size_t k = 0; k < ideal.timeline.size(); ++k) {
    SCOPED_TRACE(k);
    EXPECT_EQ(hybrid.timeline[k].pc, ideal.timeline[k].pc);
    EXPECT_EQ(hybrid.timeline[k].issue_cycle, ideal.timeline[k].issue_cycle);
    EXPECT_EQ(hybrid.timeline[k].complete_cycle,
              ideal.timeline[k].complete_cycle);
  }
}

TEST_P(TimingEquivalence, UltrascalarIIIsNeverFasterThanIdeal) {
  // The batch machine idles "waiting for everyone to finish before
  // refilling" (Section 4), so it can only lose cycles.
  const auto program = isa::AssembleOrDie(GetParam().source);
  auto cfg = DefaultConfig();
  cfg.window_size = 64;
  const auto ideal = RunOn(ProcessorKind::kIdeal, program, cfg);
  const auto usii = RunOn(ProcessorKind::kUltrascalarII, program, cfg);
  EXPECT_GE(usii.cycles, ideal.cycles);
}

INSTANTIATE_TEST_SUITE_P(Battery, TimingEquivalence,
                         testing::ValuesIn(kPrograms),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace ultra::core
