// Tests for the parallel-prefix circuit substrate: the two CSPP
// implementations (mux ring and tree) must agree with the walking-backward
// reference on arbitrary inputs, and their gate depths must scale as the
// paper claims (Theta(n) for the ring, Theta(log n) for the tree).
#include <gtest/gtest.h>

#include <random>

#include "circuit/circuit.hpp"

namespace ultra::circuit {
namespace {

using U8 = std::uint8_t;

// --- Static helpers -------------------------------------------------------

TEST(SignalHelpers, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(SignalHelpers, ReductionDepth) {
  EXPECT_EQ(ReductionDepth(1), 0);
  EXPECT_EQ(ReductionDepth(2), 1);
  EXPECT_EQ(ReductionDepth(8), 3);
  EXPECT_EQ(ReductionDepth(9), 4);
}

TEST(SignalHelpers, ComparatorDepthGrowsDoublyLogarithmically) {
  // Comparing log2(L)-bit register numbers takes O(log log L) gate delay.
  EXPECT_EQ(ComparatorDepth(1), 1);
  EXPECT_EQ(ComparatorDepth(5), 1 + 3);   // 32 registers -> 5-bit numbers.
  EXPECT_EQ(ComparatorDepth(6), 1 + 3);   // 64 registers -> 6-bit numbers.
}

// --- The Figure 5 worked example ------------------------------------------

TEST(CsppReference, Figure5Example) {
  // Station 6 is the oldest (segment). Stations 6,7,0,1,3 raise their
  // condition inputs. The circuit outputs high to stations 7,0,1,2.
  const std::vector<U8> inputs = {1, 1, 0, 1, 0, 0, 1, 1};
  std::vector<U8> segments(8, 0);
  segments[6] = 1;
  const auto out = CsppReference<U8, AndOp>(inputs, segments, AndOp{});
  const std::vector<U8> expected = {1, 1, 1, 0, 0, 0, 0, 1};
  // out[i] = AND over stations oldest..i-1.
  for (int i = 0; i < 8; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)] != 0,
              expected[static_cast<std::size_t>(i)] != 0);
  }
}

TEST(CsppRing, Figure5Example) {
  const std::vector<U8> raw_inputs = {1, 1, 0, 1, 0, 0, 1, 1};
  std::vector<Signal<bool>> inputs(8);
  std::vector<Signal<bool>> segments(8);
  for (int i = 0; i < 8; ++i) {
    inputs[static_cast<std::size_t>(i)] = {raw_inputs[static_cast<std::size_t>(i)] != 0, 0};
    segments[static_cast<std::size_t>(i)] = {i == 6, 0};
  }
  const auto out = CsppRingEvaluate<bool, AndOp>(inputs, segments);
  EXPECT_TRUE(out[7].value);
  EXPECT_TRUE(out[0].value);
  EXPECT_TRUE(out[1].value);
  EXPECT_TRUE(out[2].value);
  EXPECT_FALSE(out[3].value);
  EXPECT_FALSE(out[4].value);
  EXPECT_FALSE(out[5].value);
}

// --- Randomized equivalence: ring == tree == reference --------------------

struct CsppCase {
  int n;
  unsigned seed;
};

class CsppEquivalence : public testing::TestWithParam<CsppCase> {};

TEST_P(CsppEquivalence, AndOpMatchesReference) {
  const auto [n, seed] = GetParam();
  std::mt19937 rng(seed);
  std::vector<U8> raw(static_cast<std::size_t>(n));
  std::vector<U8> segs(static_cast<std::size_t>(n), 0);
  for (auto& v : raw) v = static_cast<U8>(rng() & 1);
  for (auto& s : segs) s = static_cast<U8>((rng() % 4) == 0);
  segs[rng() % static_cast<unsigned>(n)] = 1;  // At least one segment.

  const auto ref = CsppReference<U8, AndOp>(raw, segs, AndOp{});

  std::vector<Signal<bool>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] = {raw[static_cast<std::size_t>(i)] != 0, 0};
    segments[static_cast<std::size_t>(i)] = {segs[static_cast<std::size_t>(i)] != 0, 0};
  }
  const auto ring = CsppRingEvaluate<bool, AndOp>(inputs, segments);
  const auto tree = CsppTreeEvaluate<bool, AndOp>(inputs, segments);
  for (int i = 0; i < n; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(ring[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)] != 0);
    EXPECT_EQ(tree[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)] != 0);
  }
}

TEST_P(CsppEquivalence, AddOpMatchesReference) {
  // A non-idempotent, non-commutative-sensitive operator catches fold-order
  // and double-counting bugs that AND/OR cannot.
  const auto [n, seed] = GetParam();
  std::mt19937 rng(seed ^ 0xbeef);
  std::vector<long long> raw(static_cast<std::size_t>(n));
  std::vector<U8> segs(static_cast<std::size_t>(n), 0);
  for (auto& v : raw) v = static_cast<long long>(rng() % 1000);
  for (auto& s : segs) s = static_cast<U8>((rng() % 3) == 0);
  segs[rng() % static_cast<unsigned>(n)] = 1;

  const auto ref = CsppReference<long long, AddOp>(raw, segs, AddOp{});

  std::vector<Signal<long long>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] = {raw[static_cast<std::size_t>(i)], 0};
    segments[static_cast<std::size_t>(i)] = {segs[static_cast<std::size_t>(i)] != 0, 0};
  }
  const auto ring = CsppRingEvaluate<long long, AddOp>(inputs, segments);
  const auto tree = CsppTreeEvaluate<long long, AddOp>(inputs, segments);
  for (int i = 0; i < n; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(ring[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)]);
    EXPECT_EQ(tree[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)]);
  }
}

TEST_P(CsppEquivalence, PassFirstMatchesReference) {
  // The register-propagation operator: output = nearest preceding writer.
  const auto [n, seed] = GetParam();
  std::mt19937 rng(seed ^ 0xcafe);
  std::vector<int> raw(static_cast<std::size_t>(n));
  std::vector<U8> segs(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) raw[static_cast<std::size_t>(i)] = i + 1;
  for (auto& s : segs) s = static_cast<U8>((rng() % 3) == 0);
  segs[rng() % static_cast<unsigned>(n)] = 1;

  const auto ref = CsppReference<int, PassFirstOp>(raw, segs, PassFirstOp{});

  std::vector<Signal<int>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] = {raw[static_cast<std::size_t>(i)], 0};
    segments[static_cast<std::size_t>(i)] = {segs[static_cast<std::size_t>(i)] != 0, 0};
  }
  const auto ring = CsppRingEvaluate<int, PassFirstOp>(inputs, segments);
  const auto tree = CsppTreeEvaluate<int, PassFirstOp>(inputs, segments);
  const auto fast = CsppValues<int, PassFirstOp>(raw, segs);
  for (int i = 0; i < n; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(ring[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)]);
    EXPECT_EQ(tree[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)]);
    EXPECT_EQ(fast[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CsppEquivalence,
    testing::Values(CsppCase{1, 1}, CsppCase{2, 2}, CsppCase{3, 3},
                    CsppCase{4, 4}, CsppCase{5, 5}, CsppCase{7, 6},
                    CsppCase{8, 7}, CsppCase{13, 8}, CsppCase{16, 9},
                    CsppCase{31, 10}, CsppCase{32, 11}, CsppCase{64, 12},
                    CsppCase{100, 13}, CsppCase{128, 14}, CsppCase{255, 15},
                    CsppCase{256, 16}),
    [](const testing::TestParamInfo<CsppCase>& info) {
      return "n" + std::to_string(info.param.n);
    });

TEST(CsppValuesHint, AnySetSegmentBitYieldsIdenticalOutputs) {
  // The start_hint only replaces the O(n) segment scan; starting the walk
  // from any set segment position must produce the same outputs, and the
  // hinted call must match the scanning call exactly.
  std::mt19937 rng(0x5eed);
  for (int n : {1, 2, 3, 5, 8, 17, 64}) {
    SCOPED_TRACE(n);
    std::vector<int> raw(static_cast<std::size_t>(n));
    std::vector<U8> segs(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) raw[static_cast<std::size_t>(i)] = i + 1;
    for (auto& s : segs) s = static_cast<U8>((rng() % 3) == 0);
    segs[rng() % static_cast<unsigned>(n)] = 1;
    const auto scanned = CsppValues<int, PassFirstOp>(raw, segs);
    std::vector<int> hinted(static_cast<std::size_t>(n));
    for (int h = 0; h < n; ++h) {
      if (!segs[static_cast<std::size_t>(h)]) continue;
      SCOPED_TRACE(h);
      CsppValuesInto<int, PassFirstOp>(raw, segs, hinted, PassFirstOp{}, h);
      EXPECT_EQ(hinted, scanned);
    }
  }
}

// --- Noncyclic segmented prefix -------------------------------------------

class SppEquivalence : public testing::TestWithParam<CsppCase> {};

TEST_P(SppEquivalence, ChainAndTreeMatchReference) {
  const auto [n, seed] = GetParam();
  std::mt19937 rng(seed ^ 0xf00d);
  std::vector<long long> raw(static_cast<std::size_t>(n));
  std::vector<U8> segs(static_cast<std::size_t>(n), 0);
  for (auto& v : raw) v = static_cast<long long>(rng() % 100);
  for (auto& s : segs) s = static_cast<U8>((rng() % 4) == 0);
  const long long initial = 10000;

  const auto ref = SppReference<long long, AddOp>(initial, raw, segs, AddOp{});

  std::vector<Signal<long long>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] = {raw[static_cast<std::size_t>(i)], 0};
    segments[static_cast<std::size_t>(i)] = {segs[static_cast<std::size_t>(i)] != 0, 0};
  }
  const Signal<long long> init{initial, 0};
  const auto chain = SppChainEvaluate<long long, AddOp>(init, inputs, segments);
  const auto tree = SppTreeEvaluate<long long, AddOp>(init, inputs, segments);
  const auto fast = SppValues<long long, AddOp>(initial, raw, segs);
  for (int i = 0; i < n; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(chain[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)]);
    EXPECT_EQ(tree[static_cast<std::size_t>(i)].value, ref[static_cast<std::size_t>(i)]);
    EXPECT_EQ(fast[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SppEquivalence,
    testing::Values(CsppCase{1, 21}, CsppCase{2, 22}, CsppCase{5, 23},
                    CsppCase{8, 24}, CsppCase{16, 25}, CsppCase{33, 26},
                    CsppCase{64, 27}, CsppCase{200, 28}),
    [](const testing::TestParamInfo<CsppCase>& info) {
      return "n" + std::to_string(info.param.n);
    });

// --- Gate-depth scaling ----------------------------------------------------

int WorstRingDepth(int n) {
  // Single writer just after the segment: the value crosses n-1 muxes.
  std::vector<Signal<int>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  segments[0] = {true, 0};
  const auto out = CsppRingEvaluate<int, PassFirstOp>(inputs, segments);
  int worst = 0;
  for (const auto& s : out) worst = std::max(worst, s.depth);
  return worst;
}

int WorstTreeDepth(int n) {
  std::vector<Signal<int>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  segments[0] = {true, 0};
  const auto out = CsppTreeEvaluate<int, PassFirstOp>(inputs, segments);
  int worst = 0;
  for (const auto& s : out) worst = std::max(worst, s.depth);
  return worst;
}

TEST(GateDepth, RingIsLinear) {
  // The Figure 1 datapath: "the processor's clock cycle is O(n) gate
  // delays" -- and Omega(n) in the worst case.
  for (const int n : {8, 16, 64, 256, 1024}) {
    SCOPED_TRACE(n);
    const int depth = WorstRingDepth(n);
    EXPECT_GE(depth, n - 1);
    EXPECT_LE(depth, 2 * n);
  }
}

TEST(GateDepth, TreeIsLogarithmic) {
  // Figure 4: "With CSPP circuits implementing the datapath, the circuit
  // has gate delay O(log n)."
  for (const int n : {8, 16, 64, 256, 1024, 4096}) {
    SCOPED_TRACE(n);
    const int depth = WorstTreeDepth(n);
    const int log_n = CeilLog2(n);
    EXPECT_LE(depth, 6 * log_n + 6);
    EXPECT_GE(depth, log_n);
  }
}

TEST(GateDepth, TreeBeatsRingForLargeN) {
  EXPECT_LT(WorstTreeDepth(1024), WorstRingDepth(1024) / 10);
}

TEST(GateDepth, RingDepthDoublesWithN) {
  const int d256 = WorstRingDepth(256);
  const int d512 = WorstRingDepth(512);
  EXPECT_NEAR(static_cast<double>(d512) / d256, 2.0, 0.1);
}

TEST_P(CsppEquivalence, MinOpMatchesReference) {
  // Idempotent but order-revealing under segmentation.
  const auto [n, seed] = GetParam();
  std::mt19937 rng(seed ^ 0x5a5a);
  std::vector<int> raw(static_cast<std::size_t>(n));
  std::vector<U8> segs(static_cast<std::size_t>(n), 0);
  for (auto& v : raw) v = static_cast<int>(rng() % 1000);
  for (auto& s : segs) s = static_cast<U8>((rng() % 5) == 0);
  segs[rng() % static_cast<unsigned>(n)] = 1;
  const auto ref = CsppReference<int, MinOp>(raw, segs, MinOp{});
  std::vector<Signal<int>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    inputs[static_cast<std::size_t>(i)] = {raw[static_cast<std::size_t>(i)], 0};
    segments[static_cast<std::size_t>(i)] = {segs[static_cast<std::size_t>(i)] != 0, 0};
  }
  const auto tree = CsppTreeEvaluate<int, MinOp>(inputs, segments);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(tree[static_cast<std::size_t>(i)].value,
              ref[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(GateDepth, InputDepthsPropagateThroughTheTree) {
  // A late-arriving input pushes every downstream output later.
  const int n = 16;
  std::vector<Signal<int>> inputs(static_cast<std::size_t>(n));
  std::vector<Signal<bool>> segments(static_cast<std::size_t>(n));
  segments[0] = {true, 0};
  const auto base = CsppTreeEvaluate<int, PassFirstOp>(inputs, segments);
  inputs[0].depth = 100;  // The segment station's value arrives late.
  const auto late = CsppTreeEvaluate<int, PassFirstOp>(inputs, segments);
  for (int i = 1; i < n; ++i) {
    EXPECT_GE(late[static_cast<std::size_t>(i)].depth,
              base[static_cast<std::size_t>(i)].depth + 100)
        << i;
  }
}

TEST(GateDepth, NonPowerOfTwoSizesStayLogarithmic) {
  for (const int n : {3, 5, 17, 100, 1000, 4095}) {
    SCOPED_TRACE(n);
    const int depth = WorstTreeDepth(n);
    EXPECT_LE(depth, 6 * CeilLog2(n) + 6);
  }
}

TEST(GateDepth, TreeDepthGrowsAdditivelyWhenNDoubles) {
  const int d256 = WorstTreeDepth(256);
  const int d512 = WorstTreeDepth(512);
  EXPECT_LE(d512 - d256, 6);
  EXPECT_GE(d512 - d256, 1);
}

}  // namespace
}  // namespace ultra::circuit
