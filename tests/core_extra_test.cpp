// Core behaviour beyond basic correctness: fetch modes, predictors, memory
// timing modes, window-size effects, randomized cross-processor sweeps, and
// the functional simulator itself.
#include <gtest/gtest.h>

#include <random>

#include "core/core.hpp"
#include "workloads/workloads.hpp"

namespace ultra::core {
namespace {

CoreConfig BaseConfig() {
  CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.predictor = PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  return cfg;
}

RunResult RunProc(ProcessorKind kind, const isa::Program& program,
              const CoreConfig& cfg) {
  auto proc = MakeProcessor(kind, cfg);
  auto result = proc->Run(program);
  EXPECT_TRUE(result.halted) << ProcessorKindName(kind);
  return result;
}

void ExpectArchMatch(const isa::Program& program, const RunResult& result) {
  FunctionalSimulator fn;
  const auto ref = fn.Run(program);
  for (std::size_t r = 0; r < ref.regs.size(); ++r) {
    ASSERT_EQ(result.regs[r], ref.regs[r]) << "r" << r;
  }
  EXPECT_EQ(result.committed, ref.instructions);
}

// --- Functional simulator ------------------------------------------------------

TEST(FunctionalSim, ProducesTraceAndOutcomes) {
  const auto program = workloads::Fibonacci(3);
  FunctionalSimulator sim;
  const auto result = sim.Run(program);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.trace.size(), result.instructions);
  // The loop branch at its pc has 3 outcomes: taken, taken, not taken.
  bool found = false;
  for (const auto& outcomes : result.outcomes_by_pc) {
    if (outcomes.size() == 3) {
      EXPECT_EQ(outcomes[0], 1);
      EXPECT_EQ(outcomes[2], 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FunctionalSim, StepLimitStopsRunaways) {
  const auto program = isa::AssembleOrDie("loop: jmp loop\n");
  FunctionalSimulator sim;
  const auto result = sim.Run(program, 100);
  EXPECT_FALSE(result.halted);
  EXPECT_EQ(result.instructions, 100u);
}

TEST(FunctionalSim, FallingOffTheEndStops) {
  const auto program = isa::AssembleOrDie("addi r1, r1, 5\n");
  FunctionalSimulator sim;
  const auto result = sim.Run(program);
  EXPECT_EQ(result.instructions, 1u);
  EXPECT_EQ(result.regs[1], 5u);
}

// --- Predictors in cores ---------------------------------------------------------

class PredictorSweep : public testing::TestWithParam<PredictorKind> {};

TEST_P(PredictorSweep, ArchitecturalStateIndependentOfPredictor) {
  const auto program = workloads::BranchStorm(32);
  auto cfg = BaseConfig();
  cfg.predictor = GetParam();
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    ExpectArchMatch(program, result);
  }
}

TEST_P(PredictorSweep, OracleNeverMispredicts) {
  if (GetParam() != PredictorKind::kOracle) GTEST_SKIP();
  const auto program = workloads::BranchStorm(32);
  auto cfg = BaseConfig();
  cfg.predictor = PredictorKind::kOracle;
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_EQ(result.stats.mispredictions, 0u);
  EXPECT_EQ(result.stats.squashed_instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PredictorSweep,
    testing::Values(PredictorKind::kNotTaken, PredictorKind::kBtfn,
                    PredictorKind::kTwoBit, PredictorKind::kOracle),
    [](const auto& info) {
      switch (info.param) {
        case PredictorKind::kNotTaken: return std::string("NotTaken");
        case PredictorKind::kBtfn: return std::string("Btfn");
        case PredictorKind::kTwoBit: return std::string("TwoBit");
        case PredictorKind::kOracle: return std::string("Oracle");
      }
      return std::string("?");
    });

TEST(Predictor, OracleIsNoSlowerThanStatic) {
  const auto program = workloads::BranchStorm(64);
  auto cfg = BaseConfig();
  cfg.predictor = PredictorKind::kBtfn;
  const auto with_btfn = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.predictor = PredictorKind::kOracle;
  const auto with_oracle = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_LE(with_oracle.cycles, with_btfn.cycles);
  EXPECT_GT(with_btfn.stats.mispredictions, 0u);
}

// --- Fetch modes ------------------------------------------------------------------

class FetchModeSweep : public testing::TestWithParam<FetchMode> {};

TEST_P(FetchModeSweep, CorrectAcrossProcessors) {
  const auto program = workloads::Fibonacci(16);
  auto cfg = BaseConfig();
  cfg.fetch_mode = GetParam();
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    ExpectArchMatch(program, RunProc(kind, program, cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, FetchModeSweep,
                         testing::Values(FetchMode::kIdeal,
                                         FetchMode::kBasicBlock,
                                         FetchMode::kTraceCache),
                         [](const auto& info) {
                           switch (info.param) {
                             case FetchMode::kIdeal:
                               return std::string("Ideal");
                             case FetchMode::kBasicBlock:
                               return std::string("BasicBlock");
                             case FetchMode::kTraceCache:
                               return std::string("TraceCache");
                           }
                           return std::string("?");
                         });

TEST(FetchModes, BasicBlockFetchIsSlowestOnBranchyCode) {
  const auto program = workloads::BranchStorm(64);
  auto cfg = BaseConfig();
  cfg.predictor = PredictorKind::kOracle;  // Isolate the fetch effect.
  cfg.fetch_mode = FetchMode::kBasicBlock;
  const auto bb = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.fetch_mode = FetchMode::kIdeal;
  const auto ideal = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.fetch_mode = FetchMode::kTraceCache;
  const auto tc = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_LT(ideal.cycles, bb.cycles);
  // A warm trace cache recovers most of the basic-block loss.
  EXPECT_LE(tc.cycles, bb.cycles);
}

// --- Memory timing modes -----------------------------------------------------------

class MemModeSweep : public testing::TestWithParam<memory::MemTimingMode> {};

TEST_P(MemModeSweep, CorrectAcrossProcessors) {
  const auto program = workloads::MemCopy(24);
  auto cfg = BaseConfig();
  cfg.mem.mode = GetParam();
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    ExpectArchMatch(program, RunProc(kind, program, cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, MemModeSweep,
    testing::Values(memory::MemTimingMode::kMagic,
                    memory::MemTimingMode::kBandwidthLimited,
                    memory::MemTimingMode::kFatTree),
    [](const auto& info) {
      switch (info.param) {
        case memory::MemTimingMode::kMagic: return std::string("Magic");
        case memory::MemTimingMode::kBandwidthLimited:
          return std::string("Bandwidth");
        case memory::MemTimingMode::kFatTree: return std::string("FatTree");
        case memory::MemTimingMode::kButterfly:
          return std::string("Butterfly");
      }
      return std::string("?");
    });

TEST(MemoryPressure, LowerBandwidthNeverHelps) {
  // Straight-line, load-heavy: the serial admission at M(n) = 1 op/cycle
  // must dominate (MemoryStream's accumulator chain would hide it).
  const auto program = workloads::RandomMix({.num_instructions = 200,
                                             .load_fraction = 0.6,
                                             .store_fraction = 0.0,
                                             .memory_words = 512,
                                             .seed = 11});
  auto cfg = BaseConfig();
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.cache.num_banks = 16;
  cfg.mem.regime = memory::BandwidthRegime::kConstant;
  const auto low = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  cfg.mem.regime = memory::BandwidthRegime::kLinear;
  const auto high = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_GT(low.cycles, high.cycles);
}

// --- Window-size effects -------------------------------------------------------------

TEST(WindowSize, MoreStationsNeverHurtTheUltrascalarI) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 256, .ilp = 16});
  auto cfg = BaseConfig();
  std::uint64_t last = ~std::uint64_t{0};
  for (const int n : {4, 8, 16, 32, 64}) {
    cfg.window_size = n;
    const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
    ExpectArchMatch(program, result);
    EXPECT_LE(result.cycles, last) << "window " << n;
    last = result.cycles;
  }
}

TEST(WindowSize, IpcSaturatesAtTheWorkloadIlp) {
  // chains(ilp=4): the dataflow limit is 4 adds/cycle once the window is
  // large enough; one li + fetch effects keep it a bit below.
  const auto program =
      workloads::DependencyChains({.num_instructions = 512, .ilp = 4});
  auto cfg = BaseConfig();
  cfg.window_size = 64;
  const auto result = RunProc(ProcessorKind::kIdeal, program, cfg);
  EXPECT_GT(result.Ipc(), 3.0);
  EXPECT_LE(result.Ipc(), 4.5);
}

TEST(WindowSize, TinyWindowStillCorrectEverywhere) {
  const auto program = workloads::BubbleSort(8);
  auto cfg = BaseConfig();
  cfg.window_size = 2;
  cfg.cluster_size = 1;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    ExpectArchMatch(program, RunProc(kind, program, cfg));
  }
}

TEST(WindowSize, WindowOfOneSerializesEverything) {
  const auto program =
      workloads::DependencyChains({.num_instructions = 32, .ilp = 4});
  auto cfg = BaseConfig();
  cfg.window_size = 1;
  cfg.cluster_size = 1;
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  ExpectArchMatch(program, result);
  EXPECT_LE(result.Ipc(), 1.0);
}

// --- Randomized cross-processor sweep --------------------------------------------------

class RandomPrograms : public testing::TestWithParam<unsigned> {};

TEST_P(RandomPrograms, AllProcessorsMatchFunctional) {
  const unsigned seed = GetParam();
  const auto program = workloads::RandomMix({.num_instructions = 160,
                                             .load_fraction = 0.2,
                                             .store_fraction = 0.15,
                                             .seed = seed});
  auto cfg = BaseConfig();
  cfg.window_size = 16 + static_cast<int>(seed % 3) * 8;
  cfg.cluster_size = 4 << (seed % 2);
  cfg.mem.mode = seed % 2 == 0 ? memory::MemTimingMode::kMagic
                               : memory::MemTimingMode::kBandwidthLimited;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    ExpectArchMatch(program, RunProc(kind, program, cfg));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         testing::Range(100u, 112u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Timing-equivalence property, randomized ---------------------------------------------

class RandomTimingEquivalence : public testing::TestWithParam<unsigned> {};

TEST_P(RandomTimingEquivalence, UsiEqualsIdealOnRandomStraightLine) {
  const auto program = workloads::RandomMix({.num_instructions = 120,
                                             .load_fraction = 0.1,
                                             .store_fraction = 0.1,
                                             .seed = GetParam()});
  auto cfg = BaseConfig();
  cfg.window_size = 48;
  const auto ideal = RunProc(ProcessorKind::kIdeal, program, cfg);
  const auto usi = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_EQ(usi.cycles, ideal.cycles);
  ASSERT_EQ(usi.timeline.size(), ideal.timeline.size());
  for (std::size_t k = 0; k < ideal.timeline.size(); ++k) {
    ASSERT_EQ(usi.timeline[k].issue_cycle, ideal.timeline[k].issue_cycle)
        << "instruction " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTimingEquivalence,
                         testing::Range(200u, 210u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Stats sanity ------------------------------------------------------------------------

TEST(Stats, MemoryOpCountsMatchTheProgram) {
  const auto program = workloads::MemCopy(16);
  const auto result =
      RunProc(ProcessorKind::kUltrascalarI, program, BaseConfig());
  // Committed loads/stores: 16 each (speculative replays may add more, but
  // BTFN predicts this loop perfectly except the final iteration).
  EXPECT_GE(result.stats.load_count, 16u);
  EXPECT_GE(result.stats.store_count, 16u);
  // Stores are never speculative: exactly the committed count.
  EXPECT_EQ(result.stats.store_count, 16u);
}

TEST(Stats, MispredictionsAreCountedAndSquash) {
  const auto program = workloads::BranchStorm(32);
  auto cfg = BaseConfig();
  cfg.predictor = PredictorKind::kNotTaken;
  const auto result = RunProc(ProcessorKind::kUltrascalarI, program, cfg);
  EXPECT_GT(result.stats.mispredictions, 10u);
  EXPECT_GT(result.stats.squashed_instructions, 0u);
}

// --- Soak: a long-running kernel through every processor -------------------------

TEST(Soak, MatMulOnEveryProcessor) {
  const auto program = workloads::MatMul(6);
  auto cfg = BaseConfig();
  cfg.window_size = 48;
  cfg.cluster_size = 12;
  cfg.predictor = PredictorKind::kTwoBit;
  cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
  cfg.mem.regime = memory::BandwidthRegime::kSqrt;
  for (const auto kind :
       {ProcessorKind::kIdeal, ProcessorKind::kUltrascalarI,
        ProcessorKind::kUltrascalarII, ProcessorKind::kHybrid}) {
    SCOPED_TRACE(ProcessorKindName(kind));
    const auto result = RunProc(kind, program, cfg);
    ASSERT_TRUE(result.halted);
    ExpectArchMatch(program, result);
    EXPECT_GT(result.committed, 3000u);  // ~6^3 * 16 dynamic instructions.
  }
}

}  // namespace
}  // namespace ultra::core
