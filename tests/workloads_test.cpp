// Tests for the workload kernels and generators: each must assemble, halt,
// and compute the architecturally correct result.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <random>

#include "core/functional_sim.hpp"
#include "persist/serial.hpp"
#include "workloads/workloads.hpp"

namespace ultra::workloads {
namespace {

core::FunctionalResult RunFunctional(const isa::Program& program) {
  core::FunctionalSimulator sim;
  auto result = sim.Run(program);
  EXPECT_TRUE(result.halted);
  return result;
}

TEST(Kernels, Figure3HasNineInstructions) {
  const auto program = Figure3Example();
  EXPECT_EQ(program.size(), 9u);
  EXPECT_EQ(program.at(8).op, isa::Opcode::kHalt);
}

TEST(Kernels, FibonacciComputesTheSequence) {
  const int expected[] = {0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55};
  for (int k = 0; k <= 10; ++k) {
    SCOPED_TRACE(k);
    const auto result = RunFunctional(Fibonacci(k));
    EXPECT_EQ(result.regs[1], static_cast<isa::Word>(expected[k]));
  }
}

TEST(Kernels, Fibonacci32BitWraps) {
  const auto result = RunFunctional(Fibonacci(50));
  // fib(50) mod 2^32.
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t t = (a + b) & 0xffffffffu;
    a = b;
    b = t;
  }
  EXPECT_EQ(result.regs[1], static_cast<isa::Word>(a));
}

TEST(Kernels, DotProductMatchesDirectComputation) {
  const unsigned seed = 17;
  const int len = 13;
  const auto result = RunFunctional(DotProduct(len, seed));
  std::mt19937 rng(seed);
  std::uint32_t expected = 0;
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < len; ++i) {
    a.push_back(rng() % 100);
    b.push_back(rng() % 100);
  }
  for (int i = 0; i < len; ++i) expected += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  EXPECT_EQ(result.regs[2], expected);
}

TEST(Kernels, MemCopyCopiesEveryWord) {
  const int words = 9;
  const unsigned seed = 23;
  const auto result = RunFunctional(MemCopy(words, seed));
  std::mt19937 rng(seed);
  for (int i = 0; i < words; ++i) {
    const isa::Word expected = rng() % 1000;
    EXPECT_EQ(result.memory.ReadWord(static_cast<isa::Word>(4 * i)),
              expected);
    EXPECT_EQ(
        result.memory.ReadWord(static_cast<isa::Word>(4 * (words + i))),
        expected);
  }
}

TEST(Kernels, BubbleSortSorts) {
  const int len = 10;
  const unsigned seed = 31;
  const auto result = RunFunctional(BubbleSort(len, seed));
  std::mt19937 rng(seed);
  std::vector<std::int32_t> expected;
  for (int i = 0; i < len; ++i) expected.push_back(static_cast<std::int32_t>(rng() % 1000));
  std::sort(expected.begin(), expected.end());
  for (int i = 0; i < len; ++i) {
    EXPECT_EQ(static_cast<std::int32_t>(
                  result.memory.ReadWord(static_cast<isa::Word>(4 * i))),
              expected[static_cast<std::size_t>(i)])
        << "index " << i;
  }
}

TEST(Kernels, IndirectSumEqualsDirectSum) {
  const int len = 11;
  const unsigned seed = 41;
  const auto result = RunFunctional(IndirectSum(len, seed));
  // The permutation visits every element exactly once, so the indirect sum
  // equals the plain sum of the data vector.
  std::mt19937 rng(seed);
  std::vector<int> perm(static_cast<std::size_t>(len));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::uint32_t expected = 0;
  for (int i = 0; i < len; ++i) expected += rng() % 500;
  EXPECT_EQ(result.regs[5], expected);
}

TEST(Generators, DependencyChainsExposeExactIlp) {
  // With k independent chains the dataflow-limit IPC is k; the functional
  // check here is that every chain accumulated its own count.
  const auto program =
      DependencyChains({.num_instructions = 120, .ilp = 4, .seed = 5});
  const auto result = RunFunctional(program);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(result.regs[static_cast<std::size_t>(c + 1)],
              static_cast<isa::Word>(c + 1 + 30));  // Seeded + 120/4 adds.
  }
}

TEST(Generators, DependencyChainsDeterministicInSeed) {
  const ChainConfig cfg{.num_instructions = 64, .ilp = 3,
                        .use_long_ops = true, .seed = 9};
  const auto a = DependencyChains(cfg);
  const auto b = DependencyChains(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Generators, RandomMixIsStraightLine) {
  const auto program = RandomMix({.num_instructions = 200, .seed = 3});
  for (const auto& inst : program.code()) {
    EXPECT_FALSE(isa::IsControlFlow(inst.op)) << isa::ToString(inst);
  }
  EXPECT_EQ(program.code().back().op, isa::Opcode::kHalt);
  RunFunctional(program);
}

TEST(Generators, RandomMixRespectsFractionsRoughly) {
  const auto program = RandomMix({.num_instructions = 2000,
                                  .load_fraction = 0.3,
                                  .store_fraction = 0.2,
                                  .seed = 77});
  int loads = 0, stores = 0;
  for (const auto& inst : program.code()) {
    loads += inst.op == isa::Opcode::kLoad;
    stores += inst.op == isa::Opcode::kStore;
  }
  EXPECT_NEAR(loads / 2000.0, 0.3, 0.05);
  EXPECT_NEAR(stores / 2000.0, 0.2, 0.05);
}

TEST(Generators, MemoryStreamSumsTheArrayEachIteration) {
  const StreamConfig cfg{.iterations = 5, .loads_per_iter = 4,
                         .stride_words = 1, .seed = 13};
  const auto result = RunFunctional(MemoryStream(cfg));
  std::mt19937 rng(13);
  std::uint32_t per_iter = 0;
  for (int i = 0; i < 4; ++i) per_iter += rng() % 100;
  EXPECT_EQ(result.regs[4], per_iter * 5);
}

TEST(Kernels, MatMulMatchesDirectComputation) {
  const int n = 4;
  const unsigned seed = 19;
  const auto result = RunFunctional(MatMul(n, seed));
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < n * n; ++i) {
    a.push_back(rng() % 20);
    b.push_back(rng() % 20);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::uint32_t c = 0;
      for (int k = 0; k < n; ++k) {
        c += a[static_cast<std::size_t>(i * n + k)] *
             b[static_cast<std::size_t>(k * n + j)];
      }
      const auto addr = static_cast<isa::Word>(4 * (2 * n * n + i * n + j));
      EXPECT_EQ(result.memory.ReadWord(addr), c) << i << "," << j;
    }
  }
}

TEST(Generators, BranchStormAlternates) {
  const auto result = RunFunctional(BranchStorm(10));
  // Even iterations add 1, odd add 7: 5*1 + 5*7 = 40.
  EXPECT_EQ(result.regs[3], 40u);
}

TEST(Generators, CodeFootprintComputesItsIterationCount) {
  const auto result = RunFunctional(
      CodeFootprint({.body_instructions = 64, .iterations = 5}));
  EXPECT_EQ(result.regs[1], 5u);   // Loop counter ran to completion.
  // Each of the 29 rotating registers (r3..r31) absorbed its share of the
  // 64 adds per iteration, 5 iterations: 64*5 = 320 increments in total.
  std::uint32_t total = 0;
  for (int r = 3; r < 32; ++r) total += result.regs[static_cast<size_t>(r)];
  EXPECT_EQ(total, 320u);
}

TEST(Generators, StridedSweepWalksEveryPass) {
  for (const bool dependent : {false, true}) {
    SCOPED_TRACE(dependent ? "dependent" : "unrolled");
    const auto result = RunFunctional(StridedSweep({.array_words = 64,
                                                    .stride_words = 4,
                                                    .passes = 3,
                                                    .unroll = 2,
                                                    .dependent = dependent}));
    EXPECT_EQ(result.regs[2], 3u);          // All passes ran.
    EXPECT_GE(result.regs[1], 64u * 4u);    // Pointer crossed the array.
    EXPECT_EQ(result.regs[4], 0u);          // The array reads as zeros.
  }
}

// --- Trace-driven workloads (PR 9) ----------------------------------------

void ExpectSameProgram(const isa::Program& a, const isa::Program& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i), b.at(i)) << "instruction " << i;
  }
  EXPECT_EQ(a.initial_memory(), b.initial_memory());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Trace, TextRoundTripPreservesTheProgram) {
  const auto trace = RecordTrace("bubble", BubbleSort(12));
  const auto back = DecodeTraceText(EncodeTraceText(trace));
  EXPECT_EQ(back.name, "bubble");
  ExpectSameProgram(TraceToProgram(back), TraceToProgram(trace));
}

TEST(Trace, BinaryRoundTripPreservesTheProgram) {
  const auto trace = RecordTrace(
      "stride", StridedSweep({.array_words = 32, .stride_words = 2}));
  const auto back = DecodeTraceBinary(EncodeTraceBinary(trace));
  EXPECT_EQ(back.name, "stride");
  ExpectSameProgram(TraceToProgram(back), TraceToProgram(trace));
}

TEST(Trace, ReplayedProgramComputesTheSameResult) {
  const auto original = Fibonacci(20);
  const auto replayed = TraceToProgram(
      DecodeTraceText(EncodeTraceText(RecordTrace("fib", original))));
  EXPECT_EQ(RunFunctional(replayed).regs, RunFunctional(original).regs);
}

TEST(Trace, MalformedTextIsRejected) {
  const auto expect_throws = [](const std::string& text) {
    EXPECT_THROW((void)DecodeTraceText(text), persist::FormatError) << text;
  };
  expect_throws("");                                    // No header.
  expect_throws("ULTRATRACE 2\nend\n");                 // Bad version.
  expect_throws("ULTRATRACE 1\n");                      // Missing end.
  expect_throws("ULTRATRACE 1\ni bogus 1 2 3 0\nend\n");  // Bad mnemonic.
  expect_throws("ULTRATRACE 1\ni addi 999 0 0 1\nend\n");  // Register range.
  expect_throws("ULTRATRACE 1\ni addi\nend\n");         // Truncated record.
  expect_throws("ULTRATRACE 1\nmem 4\nend\n");          // Truncated mem.
  expect_throws("ULTRATRACE 1\nfrobnicate\nend\n");     // Unknown record.
}

TEST(Trace, CorruptBinaryIsRejected) {
  auto bytes = EncodeTraceBinary(RecordTrace("fib", Fibonacci(8)));
  {
    auto flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;  // Payload flip: CRC catches it.
    EXPECT_THROW((void)DecodeTraceBinary(flipped), persist::FormatError);
  }
  {
    auto truncated = bytes;
    truncated.resize(truncated.size() - 5);
    EXPECT_THROW((void)DecodeTraceBinary(truncated), persist::FormatError);
  }
  {
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW((void)DecodeTraceBinary(bad_magic), persist::FormatError);
  }
}

TEST(Trace, FileHelpersSniffTheFormat) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "ultra_workloads_trace_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto trace = RecordTrace("dot", DotProduct(16));
  const auto text_path = (dir / "trace.txt").string();
  const auto bin_path = (dir / "trace.bin").string();
  SaveTraceFile(text_path, trace, /*binary=*/false);
  SaveTraceFile(bin_path, trace, /*binary=*/true);
  ExpectSameProgram(TraceToProgram(LoadTraceFile(text_path)),
                    TraceToProgram(trace));
  ExpectSameProgram(TraceToProgram(LoadTraceFile(bin_path)),
                    TraceToProgram(trace));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ultra::workloads
