// Differential tests for the bit-packed datapath lanes (datapath/bitset.hpp
// and the packed sequencing/scheduler entry points): every packed circuit
// must match its byte-lane twin lane for lane, across sizes that exercise
// word boundaries, split words, and tail masks.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "datapath/bitset.hpp"
#include "datapath/scheduler.hpp"
#include "datapath/sequencing.hpp"

namespace ultra::datapath {
namespace {

/// Deterministic xorshift so the differential sweeps are reproducible.
std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::vector<std::uint8_t> RandomBytes(int n, double density,
                                      std::uint64_t& state) {
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
  const auto threshold =
      static_cast<std::uint64_t>(density * 18446744073709551615.0);
  for (auto& b : bytes) b = NextRand(state) < threshold;
  return bytes;
}

PackedBits Pack(const std::vector<std::uint8_t>& bytes) {
  PackedBits bits(static_cast<int>(bytes.size()));
  for (int i = 0; i < bits.size(); ++i) {
    if (bytes[static_cast<std::size_t>(i)]) bits.Set(i);
  }
  return bits;
}

void ExpectSameLanes(const std::vector<std::uint8_t>& bytes,
                     const PackedBits& bits, const char* what, int n,
                     int oldest) {
  ASSERT_EQ(static_cast<int>(bytes.size()), bits.size());
  for (int i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(bytes[static_cast<std::size_t>(i)] != 0, bits.Test(i))
        << what << " lane " << i << " n=" << n << " oldest=" << oldest;
  }
}

// Sizes straddling word boundaries: sub-word, exact words, word + tail.
const int kSizes[] = {1, 2, 63, 64, 65, 100, 127, 128, 129, 192, 200};

TEST(PackedBitsTest, BasicInvariants) {
  PackedBits b(70);
  EXPECT_EQ(b.size(), 70);
  EXPECT_EQ(b.num_words(), 2);
  EXPECT_FALSE(b.AnySet());
  b.Set(0);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(69));
  EXPECT_EQ(b.PopCount(), 2);
  b.SetAll();
  EXPECT_EQ(b.PopCount(), 70);
  // Tail lanes must stay clear so whole-word reductions see no ghosts.
  EXPECT_EQ(b.word(1) & ~PackedTailMask(70), 0u);
  b.SetTo(69, false);
  EXPECT_EQ(b.PopCount(), 69);
  int visited = 0;
  ForEachSetBit(b, [&](int i) {
    EXPECT_TRUE(b.Test(i));
    ++visited;
  });
  EXPECT_EQ(visited, 69);
}

TEST(PackedSequencingTest, CyclicPrefixesMatchByteLanes) {
  SCOPED_TRACE("cyclic");
  std::uint64_t state = 0x1234567890abcdefULL;
  for (const int n : kSizes) {
    SequencingCspp seq(n);
    std::vector<std::uint8_t> out_bytes(static_cast<std::size_t>(n));
    PackedBits out_bits(n);
    for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      const auto cond = RandomBytes(n, density, state);
      const PackedBits packed = Pack(cond);
      for (int oldest = 0; oldest < n; ++oldest) {
        seq.AllPrecedingSatisfyInto(cond, oldest, out_bytes);
        PackedAllPrecedingSatisfyInto(packed, oldest, out_bits);
        ExpectSameLanes(out_bytes, out_bits, "all-preceding", n, oldest);
        seq.AnyPrecedingSatisfiesInto(cond, oldest, out_bytes);
        PackedAnyPrecedingSatisfiesInto(packed, oldest, out_bits);
        ExpectSameLanes(out_bytes, out_bits, "any-preceding", n, oldest);
      }
    }
  }
}

TEST(PackedSequencingTest, AcyclicPrefixMatchesByteLanes) {
  std::uint64_t state = 0xfeedfacecafebeefULL;
  for (const int n : kSizes) {
    std::vector<std::uint8_t> out_bytes(static_cast<std::size_t>(n));
    PackedBits out_bits(n);
    for (const double density : {0.0, 0.3, 0.7, 1.0}) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto cond = RandomBytes(n, density, state);
        AllPrecedingSatisfyAcyclicInto(cond, out_bytes);
        PackedAllPrecedingSatisfyAcyclicInto(Pack(cond), out_bits);
        ExpectSameLanes(out_bytes, out_bits, "acyclic", n, -1);
      }
    }
  }
}

TEST(PackedSchedulerTest, GrantsMatchByteLanes) {
  std::uint64_t state = 0x0123456789abcdefULL;
  for (const int n : kSizes) {
    AluScheduler sched(n);
    std::vector<std::uint8_t> out_bytes(static_cast<std::size_t>(n));
    PackedBits out_bits(n);
    for (const double density : {0.0, 0.2, 0.6, 1.0}) {
      const auto requests = RandomBytes(n, density, state);
      const PackedBits packed = Pack(requests);
      for (const int available : {0, 1, 2, 7, n / 2, n, n + 5}) {
        for (int oldest = 0; oldest < n; oldest += (n > 16 ? 7 : 1)) {
          sched.GrantInto(requests, available, oldest, out_bytes);
          sched.PackedGrantInto(packed, available, oldest, out_bits);
          ExpectSameLanes(out_bytes, out_bits, "grant", n, oldest);
        }
        AluScheduler::GrantAcyclicInto(requests, available, out_bytes);
        AluScheduler::PackedGrantAcyclicInto(packed, available, out_bits);
        ExpectSameLanes(out_bytes, out_bits, "grant-acyclic", n, -1);
      }
    }
  }
}

}  // namespace
}  // namespace ultra::datapath
