// Differential tests for the bit-packed datapath lanes (datapath/bitset.hpp
// and the packed sequencing/scheduler entry points): every packed circuit
// must match its byte-lane twin lane for lane, across sizes that exercise
// word boundaries, split words, and tail masks.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "datapath/bitset.hpp"
#include "datapath/scheduler.hpp"
#include "datapath/sequencing.hpp"

namespace ultra::datapath {
namespace {

/// Deterministic xorshift so the differential sweeps are reproducible.
std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::vector<std::uint8_t> RandomBytes(int n, double density,
                                      std::uint64_t& state) {
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
  const auto threshold =
      static_cast<std::uint64_t>(density * 18446744073709551615.0);
  for (auto& b : bytes) b = NextRand(state) < threshold;
  return bytes;
}

PackedBits Pack(const std::vector<std::uint8_t>& bytes) {
  PackedBits bits(static_cast<int>(bytes.size()));
  for (int i = 0; i < bits.size(); ++i) {
    if (bytes[static_cast<std::size_t>(i)]) bits.Set(i);
  }
  return bits;
}

void ExpectSameLanes(const std::vector<std::uint8_t>& bytes,
                     const PackedBits& bits, const char* what, int n,
                     int oldest) {
  ASSERT_EQ(static_cast<int>(bytes.size()), bits.size());
  for (int i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(bytes[static_cast<std::size_t>(i)] != 0, bits.Test(i))
        << what << " lane " << i << " n=" << n << " oldest=" << oldest;
  }
}

// Sizes straddling word boundaries: sub-word, exact words, word + tail.
const int kSizes[] = {1, 2, 63, 64, 65, 100, 127, 128, 129, 192, 200};

TEST(PackedBitsTest, BasicInvariants) {
  PackedBits b(70);
  EXPECT_EQ(b.size(), 70);
  EXPECT_EQ(b.num_words(), 2);
  EXPECT_FALSE(b.AnySet());
  b.Set(0);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(69));
  EXPECT_EQ(b.PopCount(), 2);
  b.SetAll();
  EXPECT_EQ(b.PopCount(), 70);
  // Tail lanes must stay clear so whole-word reductions see no ghosts.
  EXPECT_EQ(b.word(1) & ~PackedTailMask(70), 0u);
  b.SetTo(69, false);
  EXPECT_EQ(b.PopCount(), 69);
  int visited = 0;
  ForEachSetBit(b, [&](int i) {
    EXPECT_TRUE(b.Test(i));
    ++visited;
  });
  EXPECT_EQ(visited, 69);
}

// Multi-word block kernels (4 words per step, one AVX2 op per block when
// ULTRA_HAVE_AVX2 is on): every boolean combiner must match the naive
// per-lane reference on the same word-boundary-straddling sizes. The same
// binary runs with AVX2 on and off in CI, so this sweep is the
// scalar-vs-SIMD equivalence check.
TEST(PackedBitsTest, BlockCombinersMatchPerLaneReference) {
  std::uint64_t state = 0xa5a5a5a55a5a5a5aULL;
  for (const int n : kSizes) {
    for (const double density : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      const auto a_bytes = RandomBytes(n, density, state);
      const auto b_bytes = RandomBytes(n, 1.0 - density, state);
      const PackedBits a = Pack(a_bytes);
      const PackedBits b = Pack(b_bytes);
      PackedBits out(n);
      std::vector<std::uint8_t> expect(static_cast<std::size_t>(n));

      PackedAndInto(a, b, out);
      for (int i = 0; i < n; ++i) expect[i] = a_bytes[i] & b_bytes[i];
      ExpectSameLanes(expect, out, "and", n, -1);

      PackedAndNotInto(a, b, out);
      for (int i = 0; i < n; ++i) expect[i] = a_bytes[i] & !b_bytes[i];
      ExpectSameLanes(expect, out, "and-not", n, -1);

      PackedOrInto(a, b, out);
      for (int i = 0; i < n; ++i) expect[i] = a_bytes[i] | b_bytes[i];
      ExpectSameLanes(expect, out, "or", n, -1);

      PackedOrNotInto(a, b, out);
      for (int i = 0; i < n; ++i) expect[i] = a_bytes[i] | !b_bytes[i];
      ExpectSameLanes(expect, out, "or-not", n, -1);
      // The complement must not leak ghost lanes into the tail word.
      EXPECT_EQ(out.word(out.num_words() - 1) & ~PackedTailMask(n), 0u);

      int pc = 0;
      for (int i = 0; i < n; ++i) pc += a_bytes[i] & b_bytes[i];
      EXPECT_EQ(PackedAndPopCount(a, b), pc) << "n=" << n;

      PackedBits acc = Pack(a_bytes);
      PackedOrAccumulate(acc, b);
      for (int i = 0; i < n; ++i) expect[i] = a_bytes[i] | b_bytes[i];
      ExpectSameLanes(expect, acc, "or-accumulate", n, -1);

      // Aliased output (out == a) must be safe.
      PackedBits alias = Pack(a_bytes);
      PackedAndInto(alias, b, alias);
      for (int i = 0; i < n; ++i) expect[i] = a_bytes[i] & b_bytes[i];
      ExpectSameLanes(expect, alias, "and-aliased", n, -1);
    }
  }
}

TEST(PackedBitsTest, ShiftDownMatchesPerLaneReference) {
  std::uint64_t state = 0xdeadbeefcafef00dULL;
  for (const int n : kSizes) {
    const auto bytes = RandomBytes(n, 0.5, state);
    for (const int shift : {0, 1, 4, 8, 63, 64, 65, n - 1, n, n + 7}) {
      if (shift < 0) continue;
      PackedBits bits = Pack(bytes);
      PackedShiftDown(bits, shift);
      std::vector<std::uint8_t> expect(static_cast<std::size_t>(n), 0);
      for (int i = 0; i + shift < n; ++i) expect[i] = bytes[i + shift];
      ExpectSameLanes(expect, bits, "shift-down", n, shift);
    }
  }
}

TEST(PackedBitsTest, RangeScansMatchLinearReference) {
  std::uint64_t state = 0x0badc0ffee0ddf00ULL;
  for (const int n : kSizes) {
    for (const double density : {0.0, 0.05, 0.5, 1.0}) {
      const auto bytes = RandomBytes(n, density, state);
      const PackedBits bits = Pack(bytes);
      const int step = n > 32 ? 11 : 1;
      for (int lo = 0; lo <= n; lo += step) {
        for (int hi = lo; hi <= n; hi += step) {
          int lowest = -1;
          int highest = -1;
          for (int i = lo; i < hi; ++i) {
            if (!bytes[static_cast<std::size_t>(i)]) continue;
            if (lowest < 0) lowest = i;
            highest = i;
          }
          ASSERT_EQ(LowestSetInRange(bits, lo, hi), lowest)
              << "n=" << n << " [" << lo << "," << hi << ")";
          ASSERT_EQ(HighestSetInRange(bits, lo, hi), highest)
              << "n=" << n << " [" << lo << "," << hi << ")";

          PackedBits dst(n);
          dst.Set(0);  // Pre-existing lanes must survive the |=.
          PackedOrRangeInto(bits, lo, hi, dst);
          std::vector<std::uint8_t> expect(static_cast<std::size_t>(n), 0);
          expect[0] = 1;
          for (int i = lo; i < hi; ++i) {
            if (bytes[static_cast<std::size_t>(i)]) expect[i] = 1;
          }
          ExpectSameLanes(expect, dst, "or-range", n, lo);
        }
      }
    }
  }
}

TEST(PackedSequencingTest, CyclicPrefixesMatchByteLanes) {
  SCOPED_TRACE("cyclic");
  std::uint64_t state = 0x1234567890abcdefULL;
  for (const int n : kSizes) {
    SequencingCspp seq(n);
    std::vector<std::uint8_t> out_bytes(static_cast<std::size_t>(n));
    PackedBits out_bits(n);
    for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      const auto cond = RandomBytes(n, density, state);
      const PackedBits packed = Pack(cond);
      for (int oldest = 0; oldest < n; ++oldest) {
        seq.AllPrecedingSatisfyInto(cond, oldest, out_bytes);
        PackedAllPrecedingSatisfyInto(packed, oldest, out_bits);
        ExpectSameLanes(out_bytes, out_bits, "all-preceding", n, oldest);
        seq.AnyPrecedingSatisfiesInto(cond, oldest, out_bytes);
        PackedAnyPrecedingSatisfiesInto(packed, oldest, out_bits);
        ExpectSameLanes(out_bytes, out_bits, "any-preceding", n, oldest);
      }
    }
  }
}

TEST(PackedSequencingTest, AcyclicPrefixMatchesByteLanes) {
  std::uint64_t state = 0xfeedfacecafebeefULL;
  for (const int n : kSizes) {
    std::vector<std::uint8_t> out_bytes(static_cast<std::size_t>(n));
    PackedBits out_bits(n);
    for (const double density : {0.0, 0.3, 0.7, 1.0}) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto cond = RandomBytes(n, density, state);
        AllPrecedingSatisfyAcyclicInto(cond, out_bytes);
        PackedAllPrecedingSatisfyAcyclicInto(Pack(cond), out_bits);
        ExpectSameLanes(out_bytes, out_bits, "acyclic", n, -1);
      }
    }
  }
}

TEST(PackedSchedulerTest, GrantsMatchByteLanes) {
  std::uint64_t state = 0x0123456789abcdefULL;
  for (const int n : kSizes) {
    AluScheduler sched(n);
    std::vector<std::uint8_t> out_bytes(static_cast<std::size_t>(n));
    PackedBits out_bits(n);
    for (const double density : {0.0, 0.2, 0.6, 1.0}) {
      const auto requests = RandomBytes(n, density, state);
      const PackedBits packed = Pack(requests);
      for (const int available : {0, 1, 2, 7, n / 2, n, n + 5}) {
        for (int oldest = 0; oldest < n; oldest += (n > 16 ? 7 : 1)) {
          sched.GrantInto(requests, available, oldest, out_bytes);
          sched.PackedGrantInto(packed, available, oldest, out_bits);
          ExpectSameLanes(out_bytes, out_bits, "grant", n, oldest);
        }
        AluScheduler::GrantAcyclicInto(requests, available, out_bytes);
        AluScheduler::PackedGrantAcyclicInto(packed, available, out_bits);
        ExpectSameLanes(out_bytes, out_bits, "grant-acyclic", n, -1);
      }
    }
  }
}

}  // namespace
}  // namespace ultra::datapath
