// Tests for the telemetry subsystem: registry/handle semantics, histogram
// bucket edges, the trace ring, shard-merge determinism, sweep integration
// (per-point snapshots, byte-identical exports at any thread count), the
// golden Perfetto export, and the Figure 3 issue-schedule acceptance check.
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workloads.hpp"

namespace ultra {
namespace {

using telemetry::MetricKind;
using telemetry::MetricsRegistry;
using telemetry::MetricSheet;
using telemetry::PipelineTracer;
using telemetry::TraceEvent;
using telemetry::TraceEventKind;

// --- MetricsRegistry / MetricSheet ---------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const auto a = reg.Counter("sim.widgets");
  const auto b = reg.Counter("sim.widgets");
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(reg.metrics().size(), 1u);

  const std::uint64_t bounds[] = {1, 2, 4};
  const auto h1 = reg.Histogram("sim.latency", bounds);
  const auto h2 = reg.Histogram("sim.latency", bounds);
  EXPECT_EQ(h1.slot, h2.slot);
  EXPECT_EQ(reg.metrics().size(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.Counter("x");
  EXPECT_THROW(reg.Gauge("x"), std::invalid_argument);
  const std::uint64_t bounds[] = {1, 2};
  EXPECT_THROW(reg.Histogram("x", bounds), std::invalid_argument);
  reg.Histogram("h", bounds);
  const std::uint64_t other[] = {1, 3};
  EXPECT_THROW(reg.Histogram("h", other), std::invalid_argument);
  const std::uint64_t not_increasing[] = {4, 2};
  EXPECT_THROW(reg.Histogram("bad", not_increasing), std::invalid_argument);
  EXPECT_THROW(reg.Histogram("empty", {}), std::invalid_argument);
}

TEST(MetricSheet, UnboundSheetAndInvalidHandleAreNoops) {
  MetricSheet sheet;  // Never bound.
  sheet.Add(telemetry::CounterId{}, 7);
  sheet.Observe(telemetry::HistogramId{}, 7);
  EXPECT_FALSE(sheet.enabled());
  EXPECT_TRUE(sheet.Snapshot().empty());

  MetricsRegistry reg;
  const auto c = reg.Counter("c");
  sheet.Bind(&reg);
  sheet.Add(telemetry::CounterId{}, 7);  // Unregistered handle: still no-op.
  EXPECT_EQ(sheet.Value(c), 0u);
  sheet.Add(c, 3);
  EXPECT_EQ(sheet.Value(c), 3u);
}

TEST(MetricSheet, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  const std::uint64_t bounds[] = {0, 10, 20};
  const auto h = reg.Histogram("h", bounds);
  MetricSheet sheet(&reg);
  // Bucket i counts v <= bounds[i] (first match); beyond the last bound is
  // the overflow bucket.
  sheet.Observe(h, 0);   // bucket 0
  sheet.Observe(h, 1);   // bucket 1
  sheet.Observe(h, 10);  // bucket 1
  sheet.Observe(h, 11);  // bucket 2
  sheet.Observe(h, 20);  // bucket 2
  sheet.Observe(h, 21);  // overflow
  const auto snap = sheet.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  const auto& m = snap.metrics[0];
  EXPECT_EQ(m.kind, MetricKind::kHistogram);
  ASSERT_EQ(m.buckets.size(), 4u);
  EXPECT_EQ(m.buckets[0], 1u);
  EXPECT_EQ(m.buckets[1], 2u);
  EXPECT_EQ(m.buckets[2], 2u);
  EXPECT_EQ(m.buckets[3], 1u);
  EXPECT_EQ(m.count, 6u);
  EXPECT_EQ(m.sum, 0u + 1 + 10 + 11 + 20 + 21);
}

TEST(MetricSheet, MergeSumsCountersAndHistogramsMaxesGauges) {
  MetricsRegistry reg;
  const auto c = reg.Counter("c");
  const auto g = reg.Gauge("g");
  const std::uint64_t bounds[] = {5};
  const auto h = reg.Histogram("h", bounds);

  MetricSheet a(&reg), b(&reg);
  a.Add(c, 2);
  b.Add(c, 3);
  a.SetMax(g, 10);
  b.SetMax(g, 7);
  a.Observe(h, 1);
  b.Observe(h, 9);

  MetricSheet total(&reg);
  total.MergeFrom(a);
  total.MergeFrom(b);
  const auto snap = total.Snapshot();
  EXPECT_EQ(snap.Find("c")->value, 5u);
  EXPECT_EQ(snap.Find("g")->value, 10u);
  EXPECT_EQ(snap.Find("h")->count, 2u);
  EXPECT_EQ(snap.Find("h")->sum, 10u);
  EXPECT_EQ(snap.Find("h")->buckets[0], 1u);
  EXPECT_EQ(snap.Find("h")->buckets[1], 1u);
}

TEST(MetricSheet, ShardMergeIsDeterministicAcrossMergeGrouping) {
  // Merging {a, b, c} one by one or via an intermediate must give the same
  // snapshot -- the property SweepRunner relies on when it folds per-point
  // shards in submission order.
  MetricsRegistry reg;
  const auto c = reg.Counter("c");
  const auto g = reg.Gauge("g");
  MetricSheet s1(&reg), s2(&reg), s3(&reg);
  s1.Add(c, 1);
  s2.Add(c, 10);
  s3.Add(c, 100);
  s1.SetMax(g, 5);
  s2.SetMax(g, 50);
  s3.SetMax(g, 25);

  MetricSheet flat(&reg);
  flat.MergeFrom(s1);
  flat.MergeFrom(s2);
  flat.MergeFrom(s3);

  MetricSheet nested(&reg), inner(&reg);
  inner.MergeFrom(s2);
  inner.MergeFrom(s3);
  nested.MergeFrom(s1);
  nested.MergeFrom(inner);

  EXPECT_EQ(flat.Snapshot(), nested.Snapshot());
}

// --- PipelineTracer ------------------------------------------------------

TraceEvent MakeEvent(TraceEventKind kind, std::uint64_t cycle,
                     std::int32_t station, std::uint64_t seq) {
  TraceEvent e;
  e.kind = kind;
  e.cycle = cycle;
  e.station = station;
  e.seq = seq;
  return e;
}

TEST(PipelineTracer, RingWrapsOverwritingOldest) {
  PipelineTracer tracer({.capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.Record(MakeEvent(TraceEventKind::kFetch, i, 0, i));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.filtered(), 0u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].cycle, 6 + i);  // Oldest -> newest, latest four.
  }
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(PipelineTracer, CycleAndStationFiltersReject) {
  PipelineTracer tracer({.capacity = 16,
                         .cycle_begin = 10,
                         .cycle_end = 20,
                         .station_begin = 2,
                         .station_end = 4});
  tracer.Record(MakeEvent(TraceEventKind::kFetch, 9, 2, 0));    // Cycle low.
  tracer.Record(MakeEvent(TraceEventKind::kFetch, 20, 2, 0));   // Cycle high.
  tracer.Record(MakeEvent(TraceEventKind::kFetch, 15, 1, 0));   // Station low.
  tracer.Record(MakeEvent(TraceEventKind::kFetch, 15, 4, 0));   // Station high.
  tracer.Record(MakeEvent(TraceEventKind::kFetch, 15, 3, 0));   // Accepted.
  tracer.Record(MakeEvent(TraceEventKind::kCheckerCheck, 15, -1, 0));  // Core.
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.filtered(), 4u);
}

TEST(CollectInstrSpans, PairsEventsIntoLifetimes) {
  // Events arrive in cycle order, as a core emits them.
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(TraceEventKind::kFetch, 0, 1, 7));
  events.push_back(MakeEvent(TraceEventKind::kFetch, 1, 2, 8));
  events.push_back(MakeEvent(TraceEventKind::kIssue, 2, 1, 7));
  events.push_back(MakeEvent(TraceEventKind::kFetch, 2, 3, 9));  // In flight.
  events.push_back(MakeEvent(TraceEventKind::kSquash, 3, 2, 8));
  events.push_back(MakeEvent(TraceEventKind::kComplete, 4, 1, 7));
  events.push_back(MakeEvent(TraceEventKind::kCommit, 5, 1, 7));
  const auto spans = telemetry::CollectInstrSpans(events);
  ASSERT_EQ(spans.size(), 3u);
  // Terminated spans first, in terminating-event order.
  EXPECT_EQ(spans[0].seq, 8u);
  EXPECT_TRUE(spans[0].squashed);
  EXPECT_EQ(spans[0].end_cycle, 3u);
  EXPECT_EQ(spans[1].seq, 7u);
  EXPECT_TRUE(spans[1].retired);
  EXPECT_TRUE(spans[1].issued);
  EXPECT_EQ(spans[1].issue_cycle, 2u);
  EXPECT_EQ(spans[1].complete_cycle, 4u);
  EXPECT_EQ(spans[1].end_cycle, 5u);
  // Unterminated spans appended afterwards.
  EXPECT_EQ(spans[2].seq, 9u);
  EXPECT_FALSE(spans[2].retired);
  EXPECT_FALSE(spans[2].squashed);
}

// --- Perfetto export -----------------------------------------------------

TEST(Perfetto, GoldenExportOfHandBuiltEvents) {
  std::vector<TraceEvent> events;
  TraceEvent fetch = MakeEvent(TraceEventKind::kFetch, 0, 2, 5);
  fetch.pc = 3;
  fetch.op = 7;
  events.push_back(fetch);
  events.push_back(MakeEvent(TraceEventKind::kIssue, 1, 2, 5));
  events.push_back(MakeEvent(TraceEventKind::kComplete, 2, 2, 5));
  events.push_back(MakeEvent(TraceEventKind::kCommit, 3, 2, 5));
  TraceEvent resync = MakeEvent(TraceEventKind::kCheckerResync, 2, -1, 0);
  resync.payload = 4;
  events.push_back(resync);

  std::ostringstream os;
  telemetry::WritePerfettoTrace(os, events, {.process_name = "golden"});
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"golden\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"station 2\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1000000,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"core\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":4,"
      "\"name\":\"op7 seq=5\",\"cat\":\"instruction\","
      "\"args\":{\"seq\":5,\"pc\":3,\"issue\":1,\"complete\":2,\"end\":3}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1,\"dur\":2,"
      "\"name\":\"exec\",\"cat\":\"exec\",\"args\":{\"seq\":5}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":1000000,\"ts\":2,\"s\":\"t\","
      "\"name\":\"checker_resync\",\"args\":{\"payload\":4}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

// --- Core integration ----------------------------------------------------

TEST(CoreTelemetry, MetricsSnapshotCoversAllCores) {
  const auto program = workloads::DependencyChains(
      {.num_instructions = 128, .ilp = 4, .use_long_ops = true});
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    telemetry::RunTelemetry telem;
    core::CoreConfig cfg;
    cfg.window_size = 16;
    cfg.cluster_size = 4;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    cfg.telemetry = &telem;
    const auto result = core::MakeProcessor(kind, cfg)->Run(program);
    ASSERT_TRUE(result.halted);
    const auto snap = telem.Snapshot();
    SCOPED_TRACE(std::string(core::ProcessorKindName(kind)));
    const auto* occ = snap.Find("core.window_occupancy");
    ASSERT_NE(occ, nullptr);
    EXPECT_EQ(occ->count, result.cycles);
    const auto* lat = snap.Find("core.issue_to_commit_cycles");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, result.committed);
    EXPECT_GE(lat->sum, result.committed);  // Every commit is >= 1 cycle
                                            // after issue... except halt.
    ASSERT_NE(snap.Find("fault.injected"), nullptr);
    EXPECT_EQ(snap.Find("fault.injected")->value, 0u);
    if (kind != core::ProcessorKind::kIdeal) {
      const auto* dist = snap.Find("core.propagation_distance");
      ASSERT_NE(dist, nullptr);
      EXPECT_GT(dist->count, 0u);
    }
  }
}

TEST(CoreTelemetry, TraceAndTimelineAgreeOnCommits) {
  const auto program = workloads::Fibonacci(8);
  PipelineTracer tracer({.capacity = std::size_t{1} << 16});
  telemetry::RunTelemetry telem;
  telem.tracer = &tracer;
  telem.metrics_enabled = false;
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.telemetry = &telem;
  const auto result =
      core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg)
          ->Run(program);
  ASSERT_TRUE(result.halted);

  std::vector<telemetry::InstrSpan> retired;
  for (const auto& sp : telemetry::CollectInstrSpans(tracer.Events())) {
    if (sp.retired) retired.push_back(sp);
  }
  ASSERT_EQ(retired.size(), result.timeline.size());
  for (std::size_t i = 0; i < retired.size(); ++i) {
    EXPECT_EQ(retired[i].seq, result.timeline[i].seq);
    EXPECT_EQ(retired[i].station, result.timeline[i].station);
    EXPECT_EQ(retired[i].fetch_cycle, result.timeline[i].fetch_cycle);
    EXPECT_EQ(retired[i].issue_cycle, result.timeline[i].issue_cycle);
    EXPECT_EQ(retired[i].end_cycle, result.timeline[i].commit_cycle);
  }
}

TEST(CoreTelemetry, Figure3IssueScheduleMatchesThePaper) {
  // Acceptance check from the paper's Figure 3: on a large-window
  // Ultrascalar I, the example program's issue cycles relative to the first
  // issue are {0, 10, 0, 11, 0, 3, 0, 1} (div = 10 cycles, mul = 3,
  // add = 1).
  const auto program = workloads::Figure3Example();
  PipelineTracer tracer;
  telemetry::RunTelemetry telem;
  telem.tracer = &tracer;
  core::CoreConfig cfg;
  cfg.window_size = 64;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  cfg.telemetry = &telem;
  const auto result =
      core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg)
          ->Run(program);
  ASSERT_TRUE(result.halted);

  std::vector<telemetry::InstrSpan> retired;
  for (const auto& sp : telemetry::CollectInstrSpans(tracer.Events())) {
    if (sp.retired) retired.push_back(sp);
  }
  const std::vector<std::uint64_t> expected = {0, 10, 0, 11, 0, 3, 0, 1};
  ASSERT_GE(retired.size(), expected.size());
  const std::uint64_t base = retired[0].issue_cycle;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(retired[i].issued);
    EXPECT_EQ(retired[i].issue_cycle - base, expected[i])
        << "instruction " << i;
  }
}

// Packed evaluation folds the telemetry hooks into the word-parallel walk
// instead of falling back to the incremental loop; the full metric sheet
// (every counter, gauge, and histogram bucket) must come out identical to
// the incremental run's on the paper's Figure 3 schedule.
TEST(CoreTelemetry, PackedMetricSheetMatchesIncrementalOnFigure3) {
  const auto program = workloads::Figure3Example();
  const auto run = [&](core::ProcessorKind kind, core::DatapathEval eval) {
    telemetry::RunTelemetry telem;
    core::CoreConfig cfg;
    cfg.window_size = 64;
    cfg.predictor = core::PredictorKind::kBtfn;
    cfg.mem.mode = memory::MemTimingMode::kMagic;
    cfg.datapath_eval = eval;
    cfg.telemetry = &telem;
    const auto result = core::MakeProcessor(kind, cfg)->Run(program);
    EXPECT_TRUE(result.halted);
    EXPECT_EQ(result.stats.fallback_count, 0u);
    return telem.Snapshot();
  };
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    SCOPED_TRACE(std::string(core::ProcessorKindName(kind)));
    const auto incr = run(kind, core::DatapathEval::kIncremental);
    const auto packed = run(kind, core::DatapathEval::kPacked);
    EXPECT_EQ(packed, incr);
  }
}

// --- Sweep integration ---------------------------------------------------

std::vector<runtime::SweepPoint> MetricsGrid() {
  const auto fib =
      std::make_shared<const isa::Program>(workloads::Fibonacci(10));
  std::vector<runtime::SweepPoint> points;
  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    for (const int window : {8, 32}) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config.window_size = window;
      p.config.cluster_size = 4;
      p.config.mem.mode = memory::MemTimingMode::kMagic;
      p.program = fib;
      p.workload = "fib(10)";
      points.push_back(std::move(p));
    }
  }
  return points;
}

TEST(SweepTelemetry, SnapshotsAndExportsAreIdenticalAtAnyThreadCount) {
  const auto points = MetricsGrid();
  const auto one =
      runtime::SweepRunner({.num_threads = 1, .collect_metrics = true})
          .Run(points);
  const auto eight =
      runtime::SweepRunner({.num_threads = 8, .collect_metrics = true})
          .Run(points);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_TRUE(one[i].ok) << one[i].error;
    EXPECT_FALSE(one[i].metrics.empty());
    EXPECT_EQ(one[i].metrics, eight[i].metrics) << "point " << i;
  }
  std::ostringstream csv1, csv8, json1, json8;
  runtime::WriteCsv(csv1, one);
  runtime::WriteCsv(csv8, eight);
  runtime::WriteJson(json1, one);
  runtime::WriteJson(json8, eight);
  EXPECT_EQ(csv1.str(), csv8.str());
  EXPECT_EQ(json1.str(), json8.str());
  // The metric sections actually made it into the artifacts.
  EXPECT_NE(csv1.str().find("# metrics index=0"), std::string::npos);
  EXPECT_NE(csv1.str().find("core.window_occupancy"), std::string::npos);
  EXPECT_NE(json1.str().find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(json1.str().find("core.issue_to_commit_cycles"),
            std::string::npos);
}

TEST(SweepTelemetry, DisabledCollectionKeepsLegacyExportShape) {
  const auto points = MetricsGrid();
  const auto outcomes = runtime::SweepRunner({.num_threads = 2}).Run(points);
  for (const auto& o : outcomes) EXPECT_TRUE(o.metrics.empty());
  std::ostringstream csv, json;
  runtime::WriteCsv(csv, outcomes);
  runtime::WriteJson(json, outcomes);
  EXPECT_EQ(csv.str().find("# metrics"), std::string::npos);
  EXPECT_EQ(json.str().find("\"metrics\""), std::string::npos);
}

TEST(SweepTelemetry, RunnerMetricsCountAttemptsAndWallTimes) {
  const auto points = MetricsGrid();
  const auto report =
      runtime::SweepRunner({.num_threads = 2}).RunWithReport(points);
  ASSERT_EQ(report.outcomes.size(), points.size());
  const auto* attempts = report.runner_metrics.Find("sweep.attempts");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->value, points.size());  // Every point: one attempt.
  EXPECT_EQ(report.runner_metrics.Find("sweep.failed_points")->value, 0u);
  EXPECT_EQ(report.runner_metrics.Find("sweep.retries")->value, 0u);
  const auto* wall = report.runner_metrics.Find("sweep.point_wall_time_us");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, points.size());
  // The functional-sim cache is untouched: no oracle predictor and no
  // architectural checks in this sweep.
  ASSERT_NE(report.runner_metrics.Find("fnsim_cache.hits"), nullptr);
}

}  // namespace
}  // namespace ultra
