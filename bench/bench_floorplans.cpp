// Figures 6 and 10: the floorplans themselves, plus the network comparison
// the paper leaves as a choice ("via two fat-tree or butterfly networks").
#include <cstdio>

#include "analysis/analysis.hpp"
#include "analysis/floorplan.hpp"
#include "memory/memory.hpp"

int main() {
  using namespace ultra;

  std::printf("=== Figure 6: Ultrascalar I floorplan, n = 16 ===\n");
  std::printf(
      "(S = execution station, P = register prefix nodes, M = memory\n"
      " switch; wires widen toward the root in the real fat H-tree)\n\n");
  std::printf("%s\n", analysis::RenderHTreeFloorplan(16).c_str());

  std::printf("=== Figure 10: hybrid floorplan, n = 32, C = 8 ===\n");
  std::printf(
      "(each cluster: E = stations on the diagonal, R = register datapath\n"
      " below, M = memory switches above; clusters joined by the H-tree)\n\n");
  std::printf("%s\n", analysis::RenderHybridFloorplan(32, 8).c_str());

  std::printf("=== fat tree vs butterfly (Section 2's two options) ===\n\n");
  const int n = 32;
  analysis::Table table({"traffic", "network", "cycles to drain",
                         "messages"});
  const auto drain_fat = [&](bool hotspot) {
    memory::FatTreeNetwork net(
        n, memory::BandwidthProfile::ForRegime(
               memory::BandwidthRegime::kLinear));
    for (int i = 0; i < n; ++i) net.SubmitUp(i, static_cast<std::uint64_t>(i));
    (void)hotspot;  // The fat tree has one root port either way.
    int cycles = 0;
    std::size_t total = 0;
    while (total < static_cast<std::size_t>(n) && cycles < 1000) {
      net.Tick();
      ++cycles;
      total += net.DrainRoot().size();
    }
    return cycles;
  };
  const auto drain_butterfly = [&](bool hotspot) {
    memory::ButterflyNetwork net(n);
    for (int i = 0; i < n; ++i) {
      net.SubmitForward(i, hotspot ? 0 : i, static_cast<std::uint64_t>(i));
    }
    int cycles = 0;
    std::size_t total = 0;
    while (total < static_cast<std::size_t>(n) && cycles < 1000) {
      net.Tick();
      ++cycles;
      total += net.DrainForward().size();
    }
    return cycles;
  };
  table.Row().Cell("uniform (one per bank)").Cell("butterfly").Cell(
      drain_butterfly(false)).Cell(n);
  table.Row().Cell("hot spot (all to bank 0)").Cell("butterfly").Cell(
      drain_butterfly(true)).Cell(n);
  table.Row().Cell("any (single root port)").Cell("fat tree M(n)=n").Cell(
      drain_fat(false)).Cell(n);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nThe butterfly reaches every bank in log2(n) stages and sustains\n"
      "full bandwidth on conflict-free traffic, but a hot-spotted bank\n"
      "serializes on its unique final link; the fat tree concentrates all\n"
      "traffic through the root, whose fatness M(n) is the design knob.\n");
  return 0;
}
