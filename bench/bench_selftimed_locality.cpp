// E12 -- The self-timed back-of-the-envelope estimate (Section 7).
//
// "Half of the communications paths from one station to its successor are
// completely local. In such a processor, a program could run faster if most
// of its instructions depend on their immediate predecessors rather than on
// far-previous instructions."
//
// We measure, over real committed schedules, the distribution of
// producer-to-consumer distances in program order: the fraction within
// distance 1 (same/adjacent station), within a cluster (C), and beyond.
#include <cstdio>

#include "analysis/analysis.hpp"
#include "core/core.hpp"
#include "vlsi/vlsi.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

/// Self-timed estimate: replay a committed schedule and charge each cycle
/// only the wire delay its critical register communication actually needs
/// (H-tree distance between producer and consumer stations), instead of the
/// full-chip worst case the synchronous clock must assume.
double SelfTimedSpeedup(const core::RunResult& result, int window,
                        int num_regs) {
  const vlsi::UltrascalarILayout layout(
      num_regs,
      memory::BandwidthProfile::ForRegime(memory::BandwidthRegime::kConstant));
  const auto wire_ps = [&](std::int64_t subtree) {
    return 2.0 * layout.WireToLeafUm(subtree) / 1000.0 *
           vlsi::kDefaultConstants.wire_ps_per_mm;
  };
  const double gate_ps =
      vlsi::kDefaultConstants.gate_ps *
      vlsi::MeasureGateDelays(window, num_regs, num_regs).usi_tree;
  const double full_cycle_ps = gate_ps + wire_ps(window);

  // Smallest aligned 4^h H-tree block containing two stations.
  const auto block = [&](int a, int b) {
    std::int64_t size = 1;
    while (a != b) {
      a /= 4;
      b /= 4;
      size *= 4;
    }
    return std::min<std::int64_t>(size, window);
  };

  // Per-cycle critical communication distance: a producer finishing at t-1
  // whose consumer issues at t constrains cycle t.
  std::vector<std::size_t> last_writer(isa::kMaxLogicalRegisters, SIZE_MAX);
  std::unordered_map<std::uint64_t, std::int64_t> critical;  // cycle->block.
  const auto& tl = result.timeline;
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const isa::Instruction& inst = tl[i].inst;
    const auto account = [&](isa::RegId r) {
      const std::size_t w = last_writer[r];
      if (w == SIZE_MAX) return;
      if (tl[i].issue_cycle != tl[w].complete_cycle + 1) return;
      auto& blk = critical[tl[i].issue_cycle];
      blk = std::max(blk, block(tl[i].station, tl[w].station));
    };
    if (isa::ReadsRs1(inst.op)) account(inst.rs1);
    if (isa::ReadsRs2(inst.op)) account(inst.rs2);
    if (isa::WritesRd(inst.op)) last_writer[inst.rd] = i;
  }

  double self_timed_ps = 0.0;
  for (std::uint64_t t = 0; t < result.cycles; ++t) {
    const auto it = critical.find(t);
    const std::int64_t blk = it == critical.end() ? 1 : it->second;
    self_timed_ps += gate_ps + wire_ps(blk);
  }
  const double sync_ps = static_cast<double>(result.cycles) * full_cycle_ps;
  return sync_ps / self_timed_ps;
}

}  // namespace

int main() {
  std::printf("=== E12: producer->consumer locality & self-timed estimate ===\n\n");

  core::CoreConfig cfg;
  cfg.window_size = 64;
  cfg.cluster_size = 16;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  struct Workload {
    std::string name;
    isa::Program program;
  };
  const Workload workloads[] = {
      {"figure3", workloads::Figure3Example()},
      {"fib(24)", workloads::Fibonacci(24)},
      {"dot(32)", workloads::DotProduct(32)},
      {"bubble(12)", workloads::BubbleSort(12)},
      {"chains(ilp=1)",
       workloads::DependencyChains({.num_instructions = 128, .ilp = 1})},
      {"chains(ilp=16)",
       workloads::DependencyChains({.num_instructions = 256, .ilp = 16})},
      {"mix(256)", workloads::RandomMix({.num_instructions = 256})},
  };

  analysis::Table table({"workload", "dist<=1", "dist<=2", "dist<=4",
                         "dist<=8", "dist<=16 (C)", "dist<=64 (n)",
                         "self-timed speedup"});
  for (const auto& w : workloads) {
    auto proc = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
    const auto result = proc->Run(w.program);
    const auto frac = [&](std::uint64_t d) {
      return analysis::LocalCommunicationFraction(result.timeline, d);
    };
    table.Row()
        .Cell(w.name)
        .Cell(frac(1), 2)
        .Cell(frac(2), 2)
        .Cell(frac(4), 2)
        .Cell(frac(8), 2)
        .Cell(frac(16), 2)
        .Cell(frac(64), 2)
        .Cell(SelfTimedSpeedup(result, cfg.window_size, cfg.num_regs), 2);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The paper's estimate holds when the dist<=1 column is around 0.5: in\n"
      "a self-timed Ultrascalar those register values travel only\n"
      "station-to-neighbour wires. The last column quantifies it: replaying\n"
      "the schedule and charging each cycle only its critical communication\n"
      "distance (H-tree wire model) instead of the full-chip worst case --\n"
      "\"a program could run faster if most of its instructions depend on\n"
      "their immediate predecessors rather than on far-previous\n"
      "instructions\".\n");
  return 0;
}
