// Fault-recovery benchmark (engineering, not a paper figure).
//
// Measures IPC degradation versus injected fault rate for each scalable
// core under datapath_eval = kChecked: every point runs a seeded
// FaultPlan (all five kinds) through the self-checking datapath and is
// verified against the functional oracle. A fault that escaped detection
// would corrupt architectural state and fail the oracle check, so this
// binary doubles as the CI fault-injection smoke gate: any mismatch exits
// nonzero.
//
// Rows report, per (core, rate): injected faults, detected divergences,
// checker resyncs, forced-squash volume, cycles, IPC, and IPC relative to
// the same core's fault-free baseline.
//
// Usage: bench_fault_recovery [--quick] [--threads=N] [--json=PATH]
//                             [--bundle-dir=DIR] [--force-failure]
//   --quick         smaller grid and shorter workload (CI smoke run)
//   --json          output path (default BENCH_fault_recovery.json)
//   --bundle-dir    emit a repro bundle per failed point into DIR
//   --force-failure append one unchecked fault-injection point that is
//                   *expected* to fail the oracle (faults flow with no
//                   checker). With --bundle-dir, this deterministically
//                   produces a bundle the CI job replays via
//                   examples/replay_bundle; the forced failure does not
//                   affect the exit code.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace {

struct Options {
  bool quick = false;
  int threads = 1;
  std::string json_path = "BENCH_fault_recovery.json";
  std::string bundle_dir;
  bool force_failure = false;
};

Options ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--bundle-dir=", 0) == 0) {
      opt.bundle_dir = arg.substr(std::strlen("--bundle-dir="));
    } else if (arg == "--force-failure") {
      opt.force_failure = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ultra;
  const Options opt = ParseArgs(argc, argv);
  std::printf("=== Fault recovery: IPC vs injected fault rate (checked) ===\n");
  std::printf("mode: %s\n\n", opt.quick ? "quick" : "full");

  const auto program = std::make_shared<isa::Program>(workloads::RandomMix(
      {.num_instructions = opt.quick ? 1024 : 4096}));
  const std::vector<double> rates =
      opt.quick ? std::vector<double>{0.0, 0.005, 0.02}
                : std::vector<double>{0.0, 0.002, 0.005, 0.01, 0.02};
  // Horizon safely past the longest run at these sizes; events scheduled
  // beyond the actual run length are simply never staged.
  const std::uint64_t horizon = 100'000;
  const int n = opt.quick ? 32 : 64;
  const int L = 32;
  const core::ProcessorKind kinds[] = {core::ProcessorKind::kUltrascalarI,
                                       core::ProcessorKind::kUltrascalarII,
                                       core::ProcessorKind::kHybrid};

  std::vector<runtime::SweepPoint> points;
  std::vector<double> point_rate;
  std::vector<std::uint64_t> point_seed;
  for (const auto kind : kinds) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      runtime::SweepPoint point;
      point.kind = kind;
      point.config.window_size = n;
      point.config.num_regs = L;
      point.config.cluster_size = 8;
      point.config.mem.mode = memory::MemTimingMode::kMagic;
      point.config.datapath_eval = core::DatapathEval::kChecked;
      point.config.checker_stride = 32;
      const std::uint64_t seed =
          1000 + 100 * static_cast<std::uint64_t>(kind) + r;
      if (rates[r] > 0.0) {
        point.config.fault_plan = std::make_shared<const fault::FaultPlan>(
            fault::FaultPlan::Random(seed, rates[r], horizon));
      }
      point.program = program;
      point.workload = "mix";
      points.push_back(std::move(point));
      point_rate.push_back(rates[r]);
      point_seed.push_back(seed);
    }
  }

  // The forced-failure point (only with --force-failure): a fault plan
  // with datapath_eval kIncremental and no checker, so the corruption
  // flows to architectural state and the oracle quarantines the point.
  // Every parameter is pinned (independent of --quick) because most
  // injected faults are masked by downstream recomputation — this exact
  // (seed, rate, workload, window) combination is verified to corrupt
  // architectural state, and being deterministic its repro bundle replays
  // exactly.
  std::size_t forced_index = points.size();  // == size(): none.
  if (opt.force_failure) {
    runtime::SweepPoint point;
    point.kind = core::ProcessorKind::kUltrascalarI;
    point.config.window_size = 32;
    point.config.mem.mode = memory::MemTimingMode::kMagic;
    point.config.datapath_eval = core::DatapathEval::kIncremental;
    point.config.fault_plan = std::make_shared<const fault::FaultPlan>(
        fault::FaultPlan::Random(424242, 0.05, horizon));
    point.program = std::make_shared<isa::Program>(
        workloads::RandomMix({.num_instructions = 1024}));
    point.workload = "mix-forced-fault";
    forced_index = points.size();
    points.push_back(std::move(point));
    point_rate.push_back(0.05);
    point_seed.push_back(424242);
  }

  runtime::SweepOptions sweep_options{.num_threads = opt.threads,
                                      .check_architectural_state = true};
  if (!opt.bundle_dir.empty()) {
    sweep_options.bundle_dir = opt.bundle_dir;
    sweep_options.checkpoint_every = 256;
  }
  const runtime::SweepRunner runner(sweep_options);
  const auto outcomes = runner.Run(points);
  bool failed = false;
  for (const auto& o : outcomes) {
    if (!o.ok && o.index == forced_index) {
      std::printf(
          "forced failure quarantined as expected: point %zu: %s\n",
          o.index, o.error.c_str());
    } else if (!o.ok) {
      std::fprintf(stderr,
                   "UNDETECTED DIVERGENCE: point %zu (%s, rate=%g): %s\n",
                   o.index,
                   std::string(core::ProcessorKindName(o.kind)).c_str(),
                   point_rate[o.index], o.error.c_str());
      failed = true;
    }
  }
  if (failed) return 1;
  if (opt.force_failure && outcomes[forced_index].ok) {
    std::fprintf(stderr,
                 "--force-failure point unexpectedly passed the oracle\n");
    return 1;
  }

  std::size_t next = 0;
  for (const auto kind : kinds) {
    std::printf("--- %s (n=%d, L=%d) ---\n",
                std::string(core::ProcessorKindName(kind)).c_str(), n, L);
    analysis::Table table({"rate", "faults", "diverg", "resyncs", "fsquash",
                           "cycles", "IPC", "IPC/base"});
    const double base_ipc = outcomes[next].result.Ipc();
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const auto& o = outcomes[next++];
      const auto& s = o.result.stats;
      analysis::Table& row = table.Row();
      row.Cell(rates[r], 3);
      row.Cell(static_cast<double>(s.faults_injected()), 0);
      row.Cell(static_cast<double>(s.divergences_detected()), 0);
      row.Cell(static_cast<double>(s.checker_resyncs()), 0);
      row.Cell(static_cast<double>(s.squashes_under_fault()), 0);
      row.Cell(static_cast<double>(o.result.cycles), 0);
      row.Cell(o.result.Ipc(), 4);
      row.Cell(base_ipc > 0.0 ? o.result.Ipc() / base_ipc : 0.0, 4);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  out << "{\n  \"mode\": \"" << (opt.quick ? "quick" : "full")
      << "\",\n  \"workload\": \"mix\", \"window_size\": " << n
      << ", \"num_regs\": " << L << ", \"checker_stride\": 32"
      << ",\n  \"points\": [\n";
  next = 0;
  for (const auto kind : kinds) {
    const double base_ipc = outcomes[next].result.Ipc();
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const auto& o = outcomes[next++];
      const auto& s = o.result.stats;
      out << "    {\"kind\": \"" << core::ProcessorKindName(kind)
          << "\", \"rate\": " << point_rate[o.index]
          << ", \"seed\": " << point_seed[o.index]
          << ", \"cycles\": " << o.result.cycles
          << ", \"committed\": " << o.result.committed
          << ", \"ipc\": " << o.result.Ipc()
          << ", \"ipc_rel_baseline\": "
          << (base_ipc > 0.0 ? o.result.Ipc() / base_ipc : 0.0)
          << ", \"faults_injected\": " << s.faults_injected()
          << ", \"divergences_detected\": " << s.divergences_detected()
          << ", \"checker_resyncs\": " << s.checker_resyncs()
          << ", \"squashes_under_fault\": " << s.squashes_under_fault()
          << ", \"oracle_ok\": true}"
          << (next < std::size(kinds) * rates.size() ? "," : "") << "\n";
    }
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}
