// E6 -- Figure 11: the grand comparison table.
//
// For each memory-bandwidth regime the paper tabulates gate delay, wire
// delay, total delay, and area of the Ultrascalar I (log gates), the
// Ultrascalar II (linear gates and log gates), and the hybrid (linear-gate
// clusters, C = L). We print, for each cell:
//   * the paper's Theta bound,
//   * the measured/modelled value at a reference design point, and
//   * the fitted n-exponent over a sweep (which should match the bound).
#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

namespace {

using namespace ultra;
using memory::BandwidthProfile;
using memory::BandwidthRegime;

struct Theory {
  const char* gate;
  const char* wire;
  const char* total;
  const char* area;
};

struct Column {
  const char* name;
  Theory theory;
  std::function<double(std::int64_t)> gate;
  std::function<double(std::int64_t)> wire_um;
  std::function<double(std::int64_t)> area_um2;
};

void PrintRegime(const char* title, const BandwidthProfile& profile,
                 const Theory& usi_t, const Theory& usii_lin_t,
                 const Theory& usii_log_t, const Theory& hybrid_t) {
  const int L = 32;
  const vlsi::UltrascalarILayout usi(L, profile);
  const vlsi::UltrascalarIILayout usii(L);
  const vlsi::HybridLayout hybrid(L, L, profile);

  std::vector<Column> cols;
  cols.push_back(
      {"UltrascalarI (log gates)", usi_t,
       [&](std::int64_t n) {
         return vlsi::MeasureGateDelays(n, L, L).usi_tree;
       },
       [&](std::int64_t n) { return usi.At(n).wire_um; },
       [&](std::int64_t n) { return usi.At(n).area_um2(); }});
  cols.push_back(
      {"UltrascalarII (linear)", usii_lin_t,
       [&](std::int64_t n) {
         return vlsi::MeasureGateDelays(n, L, L).usii_grid;
       },
       [&](std::int64_t n) {
         return usii.At(n, vlsi::UltrascalarIILayout::Depth::kLinear).wire_um;
       },
       [&](std::int64_t n) {
         return usii.At(n, vlsi::UltrascalarIILayout::Depth::kLinear)
             .area_um2();
       }});
  cols.push_back(
      {"UltrascalarII (log gates)", usii_log_t,
       [&](std::int64_t n) {
         return vlsi::MeasureGateDelays(n, L, L).usii_mesh;
       },
       [&](std::int64_t n) {
         return usii.At(n, vlsi::UltrascalarIILayout::Depth::kLogViaTreeOfMeshes)
             .wire_um;
       },
       [&](std::int64_t n) {
         return usii
             .At(n, vlsi::UltrascalarIILayout::Depth::kLogViaTreeOfMeshes)
             .area_um2();
       }});
  cols.push_back(
      {"Hybrid (C = L)", hybrid_t,
       [&](std::int64_t n) {
         return vlsi::MeasureGateDelays(n, L, L).hybrid;
       },
       [&](std::int64_t n) { return hybrid.At(n).wire_um; },
       [&](std::int64_t n) { return hybrid.At(n).area_um2(); }});

  std::printf("--- %s (L = %d) ---\n", title, L);
  analysis::Table table({"processor", "quantity", "paper Theta",
                         "value @ n=4096", "fitted n-exp"});
  const std::int64_t ref = 4096;
  for (const auto& col : cols) {
    std::vector<double> ns, gates, wires, areas;
    for (int e = 8; e <= 14; e += 2) {
      const std::int64_t n = std::int64_t{1} << e;
      ns.push_back(static_cast<double>(n));
      gates.push_back(col.gate(n));
      wires.push_back(col.wire_um(n));
      areas.push_back(col.area_um2(n));
    }
    const auto gfit = vlsi::FitPowerLaw(ns, gates);
    const auto wfit = vlsi::FitPowerLaw(ns, wires);
    const auto afit = vlsi::FitPowerLaw(ns, areas);
    table.Row()
        .Cell(col.name)
        .Cell("gate delay")
        .Cell(col.theory.gate)
        .Cell(std::to_string(static_cast<long long>(col.gate(ref))) +
              " gates")
        .Cell(gfit.exponent);
    table.Row()
        .Cell("")
        .Cell("wire delay")
        .Cell(col.theory.wire)
        .Cell(analysis::Humanize(col.wire_um(ref) / 1e4) + " cm")
        .Cell(wfit.exponent);
    // Total delay: gates at gate_ps plus repeated-wire delay.
    const auto total_ps = [&](std::int64_t nn) {
      return col.gate(nn) * vlsi::kDefaultConstants.gate_ps +
             col.wire_um(nn) / 1000.0 * vlsi::kDefaultConstants.wire_ps_per_mm;
    };
    std::vector<double> totals;
    for (const double nn : ns) {
      totals.push_back(total_ps(static_cast<std::int64_t>(nn)));
    }
    const auto tfit = vlsi::FitPowerLaw(ns, totals);
    table.Row()
        .Cell("")
        .Cell("total delay")
        .Cell(col.theory.total)
        .Cell(analysis::Humanize(total_ps(ref) / 1000.0) + " ns")
        .Cell(tfit.exponent);
    table.Row()
        .Cell("")
        .Cell("area")
        .Cell(col.theory.area)
        .Cell(analysis::Humanize(col.area_um2(ref) / 1e8) + " cm^2")
        .Cell(afit.exponent);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("=== E6 / Figure 11: processor comparison across M(n) ===\n\n");

  PrintRegime("M(n) = O(n^{1/2-e})",
              BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus),
              {"Th(log n)", "Th(sqrt(n) L)", "Th(sqrt(n) L)", "Th(n L^2)"},
              {"Th(n+L)", "Th(n+L)", "Th(n+L)", "Th(n^2+L^2)"},
              {"Th(log(n+L))", "Th((n+L)log(n+L))", "Th((n+L)log(n+L))",
               "Th((n+L)^2 log^2(n+L))"},
              {"Th(L+log n)", "Th(sqrt(nL))", "Th(sqrt(nL))", "Th(nL)"});

  PrintRegime("M(n) = Theta(n^{1/2})",
              BandwidthProfile::ForRegime(BandwidthRegime::kSqrt),
              {"Th(log n)", "Th(sqrt(n)(L+log n))", "Th(sqrt(n)(L+log n))",
               "Th(n(L^2+log^2 n))"},
              {"Th(n+L)", "Th(n+L)", "Th(n+L)", "Th(n^2+L^2)"},
              {"Th(log(n+L))", "Th((n+L)log(n+L))", "Th((n+L)log(n+L))",
               "Th((n+L)^2 log^2(n+L))"},
              {"Th(L+log n)", "Th(sqrt(nL))", "Th(sqrt(nL))", "Th(nL)"});

  PrintRegime("M(n) = Omega(n^{1/2+e})",
              BandwidthProfile::ForRegime(BandwidthRegime::kSqrtPlus, 60.0),
              {"Th(log n)", "Th(sqrt(n)L + M(n))", "Th(sqrt(n)L + M(n))",
               "Th(nL^2 + M(n)^2)"},
              {"Th(n+L)", "Th(n+L)", "Th(n+L)", "Th(n^2+L^2)"},
              {"Th(log(n+L))", "Th((n+L)log(n+L))", "Th((n+L)log(n+L))",
               "Th((n+L)^2 log^2(n+L))"},
              {"Th(L+log n)", "Th(sqrt(nL)+M(n))", "Th(sqrt(nL)+M(n))",
               "Th(nL + M(n)^2)"});

  std::printf(
      "Dominance summary (Section 7): for n < Theta(L^2) the Ultrascalar II\n"
      "wire delay beats the Ultrascalar I by Theta(L/sqrt(n)); for larger n\n"
      "the Ultrascalar I wins by Theta(sqrt(n)/L); the hybrid dominates both\n"
      "for n >= L, by an extra factor Theta(sqrt(L)) over the Ultrascalar I.\n");
  return 0;
}
