// E6 -- Figure 11: the grand comparison table.
//
// For each memory-bandwidth regime the paper tabulates gate delay, wire
// delay, total delay, and area of the Ultrascalar I (log gates), the
// Ultrascalar II (linear gates and log gates), and the hybrid (linear-gate
// clusters, C = L). We print, for each cell:
//   * the paper's Theta bound,
//   * the measured/modelled value at a reference design point, and
//   * the fitted n-exponent over a sweep (which should match the bound).
//
// Every (regime x architecture x n) model evaluation is dispatched through
// runtime::SweepRunner::Map; results come back in submission order, so the
// printed table is byte-identical at any thread count.
//
// Usage: bench_fig11_table [--threads=N]
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "runtime/runtime.hpp"
#include "vlsi/vlsi.hpp"

namespace {

using namespace ultra;
using memory::BandwidthProfile;
using memory::BandwidthRegime;

constexpr int kL = 32;
constexpr std::int64_t kRefN = 4096;

struct Theory {
  const char* gate;
  const char* wire;
  const char* total;
  const char* area;
};

enum class Arch { kUsi, kUsiiLinear, kUsiiLog, kHybrid };

constexpr Arch kArchs[] = {Arch::kUsi, Arch::kUsiiLinear, Arch::kUsiiLog,
                           Arch::kHybrid};

const char* ArchName(Arch arch) {
  switch (arch) {
    case Arch::kUsi:
      return "UltrascalarI (log gates)";
    case Arch::kUsiiLinear:
      return "UltrascalarII (linear)";
    case Arch::kUsiiLog:
      return "UltrascalarII (log gates)";
    case Arch::kHybrid:
      return "Hybrid (C = L)";
  }
  return "?";
}

/// One model evaluation: gate delay, wire length, and area of @p arch at
/// design point @p n under @p profile.
struct CellValues {
  double gate = 0.0;
  double wire_um = 0.0;
  double area_um2 = 0.0;
};

CellValues Eval(Arch arch, const BandwidthProfile& profile, std::int64_t n) {
  const auto gates = vlsi::MeasureGateDelays(n, kL, kL);
  switch (arch) {
    case Arch::kUsi: {
      const vlsi::UltrascalarILayout usi(kL, profile);
      const auto g = usi.At(n);
      return {gates.usi_tree, g.wire_um, g.area_um2()};
    }
    case Arch::kUsiiLinear: {
      const vlsi::UltrascalarIILayout usii(kL);
      const auto g = usii.At(n, vlsi::UltrascalarIILayout::Depth::kLinear);
      return {gates.usii_grid, g.wire_um, g.area_um2()};
    }
    case Arch::kUsiiLog: {
      const vlsi::UltrascalarIILayout usii(kL);
      const auto g =
          usii.At(n, vlsi::UltrascalarIILayout::Depth::kLogViaTreeOfMeshes);
      return {gates.usii_mesh, g.wire_um, g.area_um2()};
    }
    case Arch::kHybrid: {
      const vlsi::HybridLayout hybrid(kL, kL, profile);
      const auto g = hybrid.At(n);
      return {gates.hybrid, g.wire_um, g.area_um2()};
    }
  }
  return {};
}

struct Regime {
  const char* title;
  BandwidthProfile profile;
  Theory theories[4];  // Indexed like kArchs.
};

/// All evaluated design points of one (regime, architecture) column: the
/// sweep values used for the power-law fit plus the n = kRefN reference.
struct Column {
  std::vector<double> ns, gates, wires, areas;
  CellValues ref;
};

void PrintRegime(const Regime& regime, const std::vector<Column>& columns) {
  std::printf("--- %s (L = %d) ---\n", regime.title, kL);
  analysis::Table table({"processor", "quantity", "paper Theta",
                         "value @ n=4096", "fitted n-exp"});
  for (std::size_t c = 0; c < std::size(kArchs); ++c) {
    const Column& col = columns[c];
    const Theory& theory = regime.theories[c];
    const auto gfit = vlsi::FitPowerLaw(col.ns, col.gates);
    const auto wfit = vlsi::FitPowerLaw(col.ns, col.wires);
    const auto afit = vlsi::FitPowerLaw(col.ns, col.areas);
    table.Row()
        .Cell(ArchName(kArchs[c]))
        .Cell("gate delay")
        .Cell(theory.gate)
        .Cell(std::to_string(static_cast<long long>(col.ref.gate)) +
              " gates")
        .Cell(gfit.exponent);
    table.Row()
        .Cell("")
        .Cell("wire delay")
        .Cell(theory.wire)
        .Cell(analysis::Humanize(col.ref.wire_um / 1e4) + " cm")
        .Cell(wfit.exponent);
    // Total delay: gates at gate_ps plus repeated-wire delay.
    const auto total_ps = [](const CellValues& v) {
      return v.gate * vlsi::kDefaultConstants.gate_ps +
             v.wire_um / 1000.0 * vlsi::kDefaultConstants.wire_ps_per_mm;
    };
    std::vector<double> totals;
    for (std::size_t k = 0; k < col.ns.size(); ++k) {
      totals.push_back(total_ps(
          {col.gates[k], col.wires[k], col.areas[k]}));
    }
    const auto tfit = vlsi::FitPowerLaw(col.ns, totals);
    table.Row()
        .Cell("")
        .Cell("total delay")
        .Cell(theory.total)
        .Cell(analysis::Humanize(total_ps(col.ref) / 1000.0) + " ns")
        .Cell(tfit.exponent);
    table.Row()
        .Cell("")
        .Cell("area")
        .Cell(theory.area)
        .Cell(analysis::Humanize(col.ref.area_um2 / 1e8) + " cm^2")
        .Cell(afit.exponent);
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = runtime::ParseSweepCli(argc, argv);
  std::printf("=== E6 / Figure 11: processor comparison across M(n) ===\n\n");

  const Regime regimes[] = {
      {"M(n) = O(n^{1/2-e})",
       BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus),
       {{"Th(log n)", "Th(sqrt(n) L)", "Th(sqrt(n) L)", "Th(n L^2)"},
        {"Th(n+L)", "Th(n+L)", "Th(n+L)", "Th(n^2+L^2)"},
        {"Th(log(n+L))", "Th((n+L)log(n+L))", "Th((n+L)log(n+L))",
         "Th((n+L)^2 log^2(n+L))"},
        {"Th(L+log n)", "Th(sqrt(nL))", "Th(sqrt(nL))", "Th(nL)"}}},
      {"M(n) = Theta(n^{1/2})",
       BandwidthProfile::ForRegime(BandwidthRegime::kSqrt),
       {{"Th(log n)", "Th(sqrt(n)(L+log n))", "Th(sqrt(n)(L+log n))",
         "Th(n(L^2+log^2 n))"},
        {"Th(n+L)", "Th(n+L)", "Th(n+L)", "Th(n^2+L^2)"},
        {"Th(log(n+L))", "Th((n+L)log(n+L))", "Th((n+L)log(n+L))",
         "Th((n+L)^2 log^2(n+L))"},
        {"Th(L+log n)", "Th(sqrt(nL))", "Th(sqrt(nL))", "Th(nL)"}}},
      {"M(n) = Omega(n^{1/2+e})",
       BandwidthProfile::ForRegime(BandwidthRegime::kSqrtPlus, 60.0),
       {{"Th(log n)", "Th(sqrt(n)L + M(n))", "Th(sqrt(n)L + M(n))",
         "Th(nL^2 + M(n)^2)"},
        {"Th(n+L)", "Th(n+L)", "Th(n+L)", "Th(n^2+L^2)"},
        {"Th(log(n+L))", "Th((n+L)log(n+L))", "Th((n+L)log(n+L))",
         "Th((n+L)^2 log^2(n+L))"},
        {"Th(L+log n)", "Th(sqrt(nL)+M(n))", "Th(sqrt(nL)+M(n))",
         "Th(nL + M(n)^2)"}}},
  };

  // Design points: the fit sweep n = 2^8 .. 2^14 plus the n = 4096
  // reference cell. One flattened task per (regime, arch, n).
  std::vector<std::int64_t> sweep_ns;
  for (int e = 8; e <= 14; e += 2) sweep_ns.push_back(std::int64_t{1} << e);
  const std::size_t per_col = sweep_ns.size() + 1;  // +1: reference point.
  const std::size_t num_cells =
      std::size(regimes) * std::size(kArchs) * per_col;

  const runtime::SweepRunner runner({.num_threads = cli.threads});
  const auto cells = runner.Map<CellValues>(num_cells, [&](std::size_t i) {
    const std::size_t r = i / (std::size(kArchs) * per_col);
    const std::size_t c = i / per_col % std::size(kArchs);
    const std::size_t k = i % per_col;
    const std::int64_t n = k < sweep_ns.size() ? sweep_ns[k] : kRefN;
    return Eval(kArchs[c], regimes[r].profile, n);
  });

  for (std::size_t r = 0; r < std::size(regimes); ++r) {
    std::vector<Column> columns(std::size(kArchs));
    for (std::size_t c = 0; c < std::size(kArchs); ++c) {
      Column& col = columns[c];
      const std::size_t base = (r * std::size(kArchs) + c) * per_col;
      for (std::size_t k = 0; k < sweep_ns.size(); ++k) {
        col.ns.push_back(static_cast<double>(sweep_ns[k]));
        col.gates.push_back(cells[base + k].gate);
        col.wires.push_back(cells[base + k].wire_um);
        col.areas.push_back(cells[base + k].area_um2);
      }
      col.ref = cells[base + sweep_ns.size()];
    }
    PrintRegime(regimes[r], columns);
  }

  std::printf(
      "Dominance summary (Section 7): for n < Theta(L^2) the Ultrascalar II\n"
      "wire delay beats the Ultrascalar I by Theta(L/sqrt(n)); for larger n\n"
      "the Ultrascalar I wins by Theta(sqrt(n)/L); the hybrid dominates both\n"
      "for n >= L, by an extra factor Theta(sqrt(L)) over the Ultrascalar I.\n");
  return 0;
}
