// E5 -- Hybrid floorplan and optimal cluster size (Section 6, Figure 10).
//
//   U(n) = Theta(n + L)                 if n <= C
//   U(n) = Theta(L + M(n)) + 2 U(n/4)   otherwise
// with solution U(n) = Theta(M(n) + L sqrt(n)/sqrt(C) + sqrt(n C)); the
// side is minimized at C = Theta(L), giving U(n) = Theta(M(n) + sqrt(n L)).
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

int main() {
  using namespace ultra;
  using memory::BandwidthProfile;
  using memory::BandwidthRegime;

  std::printf("=== E5: hybrid side length U(n) and optimal cluster size ===\n\n");
  const auto profile = BandwidthProfile::ForRegime(BandwidthRegime::kConstant);

  // U(n) as a function of C at a fixed design point.
  {
    const int L = 32;
    const std::int64_t n = 1 << 14;
    std::printf("--- U(n) vs cluster size, n = %lld, L = %d ---\n",
                static_cast<long long>(n), L);
    analysis::Table table({"C", "U(n) [cm]", "C/L"});
    for (int c = 1; c <= 1 << 10; c *= 2) {
      const vlsi::HybridLayout layout(L, c, profile);
      table.Row()
          .Cell(c)
          .Cell(layout.SideUm(n) / 1e4)
          .Cell(static_cast<double>(c) / L);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // Optimal C as a function of L: the paper's dU/dC = 0 gives C = Theta(L).
  {
    std::printf("--- optimal C vs L (paper: C* = Theta(L)) ---\n");
    analysis::Table table({"L", "C* (argmin U)", "C*/L"});
    std::vector<double> ls, cs;
    for (const int L : {4, 8, 16, 32, 64}) {
      const int c = vlsi::OptimalClusterSize(L, 1 << 16, profile);
      table.Row().Cell(L).Cell(c).Cell(static_cast<double>(c) / L);
      ls.push_back(L);
      cs.push_back(c);
    }
    std::printf("%s", table.ToString().c_str());
    const auto fit = vlsi::FitPowerLaw(ls, cs);
    std::printf("  fitted C*(L) exponent: %.3f (paper: 1.0)\n\n",
                fit.exponent);
  }

  // U(n) scaling at C = L across regimes.
  struct Regime {
    BandwidthRegime regime;
    double scale;
    const char* closed_form;
    double expected;
  };
  const Regime regimes[] = {
      {BandwidthRegime::kConstant, 1.0, "U = Theta(sqrt(nL))", 0.5},
      {BandwidthRegime::kSqrtPlus, 60.0, "U = Theta(sqrt(nL)+M(n))", 0.75},
      {BandwidthRegime::kLinear, 1.0, "U = Theta(n)", 1.0},
  };
  for (const auto& r : regimes) {
    const int L = 32;
    const vlsi::HybridLayout layout(
        L, L, BandwidthProfile::ForRegime(r.regime, r.scale));
    std::vector<double> ns, sides;
    analysis::Table table({"n", "U(n) [cm]", "wire [cm]"});
    for (int e = 8; e <= 20; e += 2) {
      const std::int64_t n = std::int64_t{1} << e;
      const auto g = layout.At(n);
      table.Row().Cell(n).Cell(g.side_cm()).Cell(g.wire_um / 1e4);
      ns.push_back(static_cast<double>(n));
      sides.push_back(g.side_um);
    }
    const auto fit = vlsi::FitPowerLaw(ns, sides);
    std::printf("--- %s, paper: %s ---\n%s  fitted exponent %.3f (expect %.2f)\n\n",
                BandwidthProfile::ForRegime(r.regime, r.scale).name().c_str(),
                r.closed_form, table.ToString().c_str(), fit.exponent,
                r.expected);
  }
  return 0;
}
