// E2 -- Gate-delay scaling (Sections 2 and 4; "Gate Delay" rows of
// Figure 11).
//
// Measures the critical-path gate depth of the actual circuit networks:
//   Ultrascalar I ring (Figure 1)        -> Theta(n)
//   Ultrascalar I CSPP tree (Figure 4)   -> Theta(log n)
//   Ultrascalar II grid (Figure 7)       -> Theta(n + L)
//   Ultrascalar II mesh of trees (Fig 8) -> Theta(log(n + L))
//   Hybrid, linear-gate clusters, C = L  -> Theta(L + log n)
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "datapath/datapath.hpp"
#include "vlsi/vlsi.hpp"

int main() {
  using namespace ultra;
  std::printf("=== E2: measured gate delays of the register datapaths ===\n\n");

  const int L = 32;
  std::printf("L = %d logical registers; depths in gate delays.\n\n", L);

  analysis::Table table({"n", "USI ring", "USI tree", "USII grid",
                         "USII mesh", "hybrid(C=L)"});
  std::vector<double> ns;
  std::vector<double> ring, tree, grid, mesh, hybrid;
  for (int e = 3; e <= 12; ++e) {
    const std::int64_t n = std::int64_t{1} << e;
    const auto d = vlsi::MeasureGateDelays(n, L, L);
    table.Row()
        .Cell(n)
        .Cell(d.usi_ring)
        .Cell(d.usi_tree)
        .Cell(d.usii_grid)
        .Cell(d.usii_mesh)
        .Cell(d.hybrid);
    ns.push_back(static_cast<double>(n));
    ring.push_back(d.usi_ring);
    tree.push_back(d.usi_tree);
    grid.push_back(d.usii_grid);
    mesh.push_back(d.usii_mesh);
    hybrid.push_back(d.hybrid);
  }
  std::printf("%s\n", table.ToString().c_str());

  analysis::Table fits({"circuit", "paper Theta", "fitted n-exponent",
                        "R^2"});
  const auto add_fit = [&](const char* name, const char* theory,
                           const std::vector<double>& ys) {
    const auto fit = vlsi::FitPowerLaw(ns, ys);
    fits.Row().Cell(name).Cell(theory).Cell(fit.exponent).Cell(
        fit.r_squared);
  };
  add_fit("USI ring", "Theta(n)", ring);
  add_fit("USI tree", "Theta(log n)", tree);
  add_fit("USII grid", "Theta(n+L)", grid);
  add_fit("USII mesh", "Theta(log(n+L))", mesh);
  add_fit("hybrid", "Theta(L+log n)", hybrid);
  std::printf("%s", fits.ToString().c_str());
  std::printf(
      "\n(Logarithmic circuits fit with near-zero exponent; linear circuits\n"
      "with exponent ~1. The hybrid's depth is dominated by the Theta(L)\n"
      "cluster term, so its n-exponent is also near zero.)\n");

  std::printf(
      "\n--- auxiliary circuits: Figure 5 sequencing + Memo 2 scheduler ---\n");
  analysis::Table aux({"n", "sequencing (tree)", "sequencing (ring)",
                       "ALU scheduler (tree)"});
  for (const int n : {64, 256, 1024, 4096}) {
    const std::vector<std::uint8_t> cond(static_cast<std::size_t>(n), 1);
    const datapath::SequencingCspp tree(n, datapath::PrefixImpl::kTree);
    const datapath::SequencingCspp ring(n, datapath::PrefixImpl::kRing);
    const datapath::AluScheduler sched(n);
    aux.Row()
        .Cell(n)
        .Cell(tree.MeasureGateDepth(cond, 0))
        .Cell(ring.MeasureGateDepth(cond, 0))
        .Cell(sched.MeasureGateDepth(cond, 0));
  }
  std::printf("%s", aux.ToString().c_str());
  std::printf(
      "\n(The 1-bit sequencing trees and the prefix-count scheduler stay\n"
      "logarithmic too -- every control structure in the processor is the\n"
      "same CSPP machinery.)\n");
  return 0;
}
