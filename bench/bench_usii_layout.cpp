// E4 -- Ultrascalar II floorplan (Section 5, Figure 7).
//
// Side length Theta(n + L) for the linear-gate-delay grid,
// Theta((n+L) log(n+L)) for the full tree-of-meshes, and back to
// Theta(n + L) (with a small constant-factor premium) for the mixed
// strategy that replaces the tree near the root with a linear prefix.
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

int main() {
  using namespace ultra;
  std::printf("=== E4: Ultrascalar II side length ===\n\n");

  for (const int L : {8, 32, 64}) {
    const vlsi::UltrascalarIILayout layout(L);
    std::printf("--- L = %d ---\n", L);
    analysis::Table table({"n", "linear [cm]", "log-depth [cm]",
                           "mixed [cm]", "wraparound [cm]", "log/linear"});
    std::vector<double> ns, lin;
    for (int e = 4; e <= 16; e += 2) {
      const std::int64_t n = std::int64_t{1} << e;
      const double a =
          layout.SideUm(n, vlsi::UltrascalarIILayout::Depth::kLinear);
      const double b = layout.SideUm(
          n, vlsi::UltrascalarIILayout::Depth::kLogViaTreeOfMeshes);
      const double c =
          layout.SideUm(n, vlsi::UltrascalarIILayout::Depth::kMixed);
      const double w = layout.WraparoundSideUm(
          n, vlsi::UltrascalarIILayout::Depth::kLinear);
      table.Row()
          .Cell(n)
          .Cell(a / 1e4)
          .Cell(b / 1e4)
          .Cell(c / 1e4)
          .Cell(w / 1e4)
          .Cell(b / a);
      ns.push_back(static_cast<double>(n));
      lin.push_back(a);
    }
    std::printf("%s", table.ToString().c_str());
    const auto fit = vlsi::FitPowerLaw(ns, lin);
    std::printf("  linear-side exponent: %.3f (paper: Theta(n+L) -> 1.0)\n\n",
                fit.exponent);
  }

  std::printf(
      "The memory switches fit above the diagonal \"with at worst a\n"
      "constant blowup in area\" since M(n) = O(n); the grid side already\n"
      "accounts for them.\n");
  return 0;
}
