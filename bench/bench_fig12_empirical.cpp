// E7 -- Figure 12: the empirical Magic-layout comparison.
//
// Paper (Section 7, 0.35 um, 3 metal layers, L = 32 x 32-bit, register
// datapath only):
//   (a) 64-station Ultrascalar I:     7 cm x 7 cm     ~13,000 stations/m^2
//   (b) 128-station 4-cluster hybrid: 3.2 cm x 2.7 cm ~150,000 stations/m^2
//   => the hybrid is about 11.5x denser.
// Our layout model is calibrated on these two points; this bench prints the
// comparison and then extrapolates to neighbouring design points.
#include <cstdio>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

int main() {
  using namespace ultra;
  std::printf("=== E7 / Figure 12: Magic layout comparison ===\n\n");

  const auto usi = vlsi::MagicUsiDatapath();
  const auto hybrid = vlsi::MagicHybridDatapath();

  analysis::Table table({"datapath", "paper area", "model area",
                         "paper density", "model density"});
  table.Row()
      .Cell("UltrascalarI(64)")
      .Cell("49.0 cm^2")
      .Cell(analysis::Humanize(usi.geom.area_cm2()) + " cm^2")
      .Cell("~13k /m^2")
      .Cell(analysis::Humanize(usi.stations_per_m2()) + " /m^2");
  table.Row()
      .Cell("Hybrid(128, C=32)")
      .Cell("8.64 cm^2")
      .Cell(analysis::Humanize(hybrid.geom.area_cm2()) + " cm^2")
      .Cell("~150k /m^2")
      .Cell(analysis::Humanize(hybrid.stations_per_m2()) + " /m^2");
  std::printf("%s\n", table.ToString().c_str());

  const double ratio = hybrid.stations_per_m2() / usi.stations_per_m2();
  std::printf("density ratio: %.2fx   (paper: about 11.5x)\n\n", ratio);

  std::printf("Extrapolation to other design points (same constants):\n");
  analysis::Table extra({"n", "USI area [cm^2]", "hybrid area [cm^2]",
                         "hybrid advantage"});
  for (const std::int64_t n : {16, 32, 64, 128, 256, 512, 1024}) {
    const auto a = vlsi::MagicUsiDatapath(n);
    const auto b = vlsi::MagicHybridDatapath(n, 32);
    extra.Row()
        .Cell(n)
        .Cell(a.geom.area_cm2())
        .Cell(b.geom.area_cm2())
        .Cell(a.geom.area_cm2() / b.geom.area_cm2());
  }
  std::printf("%s", extra.ToString().c_str());
  std::printf(
      "\n(Per-station area advantage approaches Theta(L) = 32 as n grows;\n"
      "at the paper's n = 128 design point it is ~11.5x at equal station\n"
      "count 64 vs 128 as published.)\n");

  std::printf(
      "\nPaper caveat reproduced: the paper's 128-wide hybrid is compared\n"
      "against a 64-wide Ultrascalar I; the model agrees at both points by\n"
      "construction, and the extrapolation shows the trend is monotone.\n");
  return 0;
}
