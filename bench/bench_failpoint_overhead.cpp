// Failpoint overhead gate (engineering, not a paper figure).
//
// The failpoint seam (src/failpoint/) is compiled into every persist and
// service I/O call unconditionally; the promise is "zero overhead when
// disabled". This bench makes that promise a CI exit code, two ways:
//
//   sim gate    simulator throughput (cycles/sec, the bench_sim_throughput
//               quick-mode hot loop: UltrascalarI on a dependency-chain
//               kernel) measured with the registry fully disarmed vs with a
//               failpoint *armed on a site the loop never hits*. Arming
//               flips the global enable, so this is the worst case the
//               simulator can ever see: the machinery live, the hot loop
//               unaffected. Gate: within --tolerance (default 1%), judged
//               on the best per-pass paired ratio so machine drift cancels.
//
//   seam gate   the per-call cost of the seam itself: 4 KiB overwrite-in-
//               place writes to the same tmp fd, direct ::write vs
//               failpoint::ActiveIo().Write with the registry disabled
//               (one relaxed atomic load + a virtual passthrough). Gate:
//               within --tolerance of raw, i.e. the seam disappears into
//               the syscall it wraps.
//
// A "counting" seam pass (registry enabled, mutex + site map per op) is
// reported for context but not gated -- turning instrumentation on is
// allowed to cost.
//
// Usage: bench_failpoint_overhead [--quick] [--json=PATH] [--tolerance=F]
//   --quick        shorter measurement windows (CI smoke run)
//   --json         output path (default BENCH_failpoint_overhead.json)
//   --tolerance    allowed fractional slowdown (default 0.01)
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "failpoint/failpoint.hpp"
#include "failpoint/io.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

struct Options {
  bool quick = false;
  std::string json_path = "BENCH_failpoint_overhead.json";
  double tolerance = 0.01;
};

Options ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      opt.tolerance = std::atof(arg.c_str() + std::strlen("--tolerance="));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  return opt;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One simulator measurement pass: repeat Run() until ~target_seconds of
/// wall time has accumulated, report cycles/sec.
double MeasureSim(const core::CoreConfig& cfg, const isa::Program& program,
                  double target_seconds) {
  const double start = Now();
  std::uint64_t total_cycles = 0;
  double elapsed = 0.0;
  do {
    auto proc = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
    total_cycles += proc->Run(program).cycles;
    elapsed = Now() - start;
  } while (elapsed < target_seconds);
  return elapsed > 0.0 ? static_cast<double>(total_cycles) / elapsed : 0.0;
}

/// One seam measurement pass: overwrite-in-place 4 KiB writes to fd until
/// ~target_seconds has accumulated, report writes/sec. `seam` routes each
/// write through failpoint::ActiveIo(); otherwise it is a direct ::write.
double MeasureWrites(int fd, bool seam, double target_seconds) {
  static const std::vector<char> block(4096, 0x5C);
  const double start = Now();
  std::uint64_t writes = 0;
  double elapsed = 0.0;
  do {
    // 256 writes per clock check keeps the timer off the hot path.
    for (int i = 0; i < 256; ++i) {
      ::lseek(fd, 0, SEEK_SET);
      const ssize_t n =
          seam ? failpoint::ActiveIo().Write("bench.write", fd, block.data(),
                                             block.size())
               : ::write(fd, block.data(), block.size());
      if (n != static_cast<ssize_t>(block.size())) {
        std::perror("bench_failpoint_overhead: write");
        std::exit(2);
      }
    }
    writes += 256;
    elapsed = Now() - start;
  } while (elapsed < target_seconds);
  return elapsed > 0.0 ? static_cast<double>(writes) / elapsed : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);
  const double target_s = opt.quick ? 0.15 : 0.3;
  const int passes = 5;  // Best paired ratio shrugs off scheduler noise.
  failpoint::Registry& reg = failpoint::Registry::Instance();
  reg.Reset();

  // --- sim gate: bench_sim_throughput's quick-mode hot loop ---------------
  const isa::Program program = workloads::DependencyChains(
      {.num_instructions = opt.quick ? 2048 : 8192, .ilp = 4});
  core::CoreConfig cfg;
  cfg.window_size = 256;
  cfg.num_regs = 32;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  std::printf("=== Failpoint overhead (UltrascalarI n=%d, %s) ===\n",
              cfg.window_size, opt.quick ? "quick" : "full");
  // Warm-up (discarded): reach steady clocks before anything is recorded.
  (void)MeasureSim(cfg, program, target_s / 3.0);

  failpoint::Schedule never;
  failpoint::ParseScheduleSpec("eio@1", &never);
  double sim_ratio = 0.0;  // Best paired armed/disarmed ratio.
  double sim_base = 0.0, sim_armed = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    reg.Reset();  // Disarmed: the shipped state.
    const double base = MeasureSim(cfg, program, target_s);
    reg.Arm("bench.never.hit", never);  // Machinery live, loop unaffected.
    const double armed = MeasureSim(cfg, program, target_s);
    reg.Reset();
    if (base > sim_base) sim_base = base;
    if (armed > sim_armed) sim_armed = armed;
    if (base > 0.0 && armed / base > sim_ratio) sim_ratio = armed / base;
  }

  // --- seam gate: ActiveIo() dispatch vs raw ::write ----------------------
  char tmpl[] = "/tmp/ultra_fp_bench.XXXXXX";
  const int fd = ::mkstemp(tmpl);
  if (fd < 0) {
    std::perror("bench_failpoint_overhead: mkstemp");
    return 2;
  }
  ::unlink(tmpl);
  (void)MeasureWrites(fd, /*seam=*/false, target_s / 3.0);  // Warm-up.

  double seam_ratio = 0.0;  // Best paired seam/raw ratio, registry disabled.
  double raw_wps = 0.0, seam_wps = 0.0, counting_wps = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    const double raw = MeasureWrites(fd, false, target_s);
    const double seam = MeasureWrites(fd, true, target_s);
    if (raw > raw_wps) raw_wps = raw;
    if (seam > seam_wps) seam_wps = seam;
    if (raw > 0.0 && seam / raw > seam_ratio) seam_ratio = seam / raw;
  }
  // Context only: the cost once someone actually enables the registry.
  reg.EnableCounting();
  counting_wps = MeasureWrites(fd, true, target_s);
  reg.Reset();
  ::close(fd);

  std::printf("%-22s %16s %12s\n", "measurement", "rate", "vs base");
  std::printf("%-22s %14.0f/s %11s\n", "sim disarmed", sim_base, "-");
  std::printf("%-22s %14.0f/s %+10.2f%%\n", "sim armed-elsewhere", sim_armed,
              (sim_ratio - 1.0) * 100.0);
  std::printf("%-22s %14.0f/s %11s\n", "write raw", raw_wps, "-");
  std::printf("%-22s %14.0f/s %+10.2f%%\n", "write via seam (off)", seam_wps,
              (seam_ratio - 1.0) * 100.0);
  std::printf("%-22s %14.0f/s %+10.2f%%\n", "write via seam (count)",
              counting_wps,
              raw_wps > 0.0 ? (counting_wps / raw_wps - 1.0) * 100.0 : 0.0);

  const bool sim_ok = sim_ratio >= 1.0 - opt.tolerance;
  const bool seam_ok = seam_ratio >= 1.0 - opt.tolerance;
  std::printf("\ngate: sim with failpoints armed-elsewhere >= %.1f%%: %s "
              "(%.2f%%)\n",
              (1.0 - opt.tolerance) * 100.0, sim_ok ? "PASS" : "FAIL",
              sim_ratio * 100.0);
  std::printf("gate: seam (disabled) write rate >= %.1f%% of raw: %s "
              "(%.2f%%)\n",
              (1.0 - opt.tolerance) * 100.0, seam_ok ? "PASS" : "FAIL",
              seam_ratio * 100.0);

  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  out << "{\n  \"mode\": \"" << (opt.quick ? "quick" : "full")
      << "\", \"tolerance\": " << opt.tolerance
      << ",\n  \"sim\": {\"disarmed_cycles_per_sec\": " << sim_base
      << ", \"armed_cycles_per_sec\": " << sim_armed
      << ", \"paired_best_ratio\": " << sim_ratio
      << ", \"gate_passed\": " << (sim_ok ? "true" : "false") << "},\n"
      << "  \"seam\": {\"raw_writes_per_sec\": " << raw_wps
      << ", \"disabled_writes_per_sec\": " << seam_wps
      << ", \"counting_writes_per_sec\": " << counting_wps
      << ", \"paired_best_ratio\": " << seam_ratio
      << ", \"gate_passed\": " << (seam_ok ? "true" : "false") << "}\n}\n";
  out.close();
  std::printf("wrote %s\n", opt.json_path.c_str());
  return sim_ok && seam_ok ? 0 : 1;
}
