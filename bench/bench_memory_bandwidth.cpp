// E10 -- Memory bandwidth as the dominating design factor (Section 7).
//
// "Our analytical results show that memory bandwidth is the dominating
// factor in the design of large-scale processors."
//
// Three views, all dispatched through the runtime::SweepRunner so the
// printed tables and any --csv/--json export are byte-identical at every
// thread count:
//  (1) Performance: IPC of a memory-streaming workload on the hybrid core
//      as the chip's accepted memory operations per cycle follow M(n).
//  (2) Cost: the wire delay the layout must pay to *provide* that M(n)
//      (analytic, via SweepRunner::Map).
//  (3) Locality: what spares the thin root link -- the per-cluster caches
//      the paper suggests, against this reproduction's L1D+L2 hierarchy
//      (see docs/memory.md) on the same reuse-heavy workload.
// Together they exhibit the paper's tension: bandwidth starves IPC when
// M(n) is small and wires when M(n) is large, unless locality models keep
// the traffic off the root.
//
// Usage: bench_memory_bandwidth [--threads=N] [--csv=PATH] [--json=PATH]
//                               [--journal=PATH] [--resume]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "vlsi/vlsi.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace ultra;
  using memory::BandwidthRegime;
  const auto cli = runtime::ParseSweepCli(argc, argv);
  std::printf("=== E10: memory-bandwidth pressure ===\n\n");

  // Load-dominated straight-line code: ~90% independent loads, no
  // accumulation chain to hide the admission bottleneck.
  const auto program =
      std::make_shared<isa::Program>(workloads::RandomMix(
          {.num_instructions = 512,
           .load_fraction = 0.9,
           .store_fraction = 0.0,
           .memory_words = 1024,
           .seed = 21}));
  // Load-heavy code with a tiny footprint (8 words): after one fill every
  // access is a repeat, which any locality model absorbs.
  const auto reuse =
      std::make_shared<isa::Program>(workloads::RandomMix(
          {.num_instructions = 512,
           .load_fraction = 0.9,
           .store_fraction = 0.0,
           .memory_words = 8,
           .seed = 33}));

  const int kWindows[] = {16, 64, 256};
  const BandwidthRegime kRegimes[] = {BandwidthRegime::kConstant,
                                      BandwidthRegime::kSqrt,
                                      BandwidthRegime::kLinear};
  enum class Locality { kNone, kClusterCaches, kHierarchy };
  const Locality kLocalities[] = {Locality::kNone, Locality::kClusterCaches,
                                  Locality::kHierarchy};

  // One sweep carries every simulated point of the bench.
  std::vector<runtime::SweepPoint> points;
  for (const int n : kWindows) {
    for (const auto regime : kRegimes) {
      runtime::SweepPoint p;
      p.kind = core::ProcessorKind::kHybrid;
      p.config.window_size = n;
      p.config.cluster_size = std::min(16, n);
      p.config.predictor = core::PredictorKind::kBtfn;
      p.config.mem.mode = memory::MemTimingMode::kBandwidthLimited;
      p.config.mem.regime = regime;
      p.config.mem.cache.num_banks = 16;
      p.program = program;
      p.workload = "stream-mix";
      points.push_back(std::move(p));
    }
  }
  // Locality models on the reuse workload, all against the same thin
  // M(n) = Theta(1) root: none, the paper's distributed per-cluster
  // caches, and the multi-level hierarchy (mutually exclusive knobs).
  for (const auto locality : kLocalities) {
    runtime::SweepPoint p;
    p.kind = core::ProcessorKind::kHybrid;
    p.config.window_size = 64;
    p.config.cluster_size = 16;
    p.config.predictor = core::PredictorKind::kOracle;
    p.config.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    p.config.mem.regime = BandwidthRegime::kConstant;
    p.config.mem.cache.num_banks = 16;
    switch (locality) {
      case Locality::kNone:
        break;
      case Locality::kClusterCaches:
        p.config.mem.cluster_cache_leaves = 16;
        p.config.mem.cluster_cache_words = 64;
        break;
      case Locality::kHierarchy:
        p.config.mem.hierarchy.l1d.enabled = true;
        p.config.mem.hierarchy.l1d.sets = 16;
        p.config.mem.hierarchy.l1d.ways = 2;
        p.config.mem.hierarchy.l1d.block_bytes = 32;
        p.config.mem.hierarchy.l2.enabled = true;
        p.config.mem.hierarchy.l2.sets = 64;
        p.config.mem.hierarchy.l2.ways = 4;
        p.config.mem.hierarchy.l2.block_bytes = 32;
        break;
    }
    p.program = reuse;
    p.workload = "reuse-mix";
    points.push_back(std::move(p));
  }
  // The USI cache-statistics view under the sqrt regime.
  {
    runtime::SweepPoint p;
    p.kind = core::ProcessorKind::kUltrascalarI;
    p.config.window_size = 64;
    p.config.cluster_size = 16;
    p.config.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    p.config.mem.regime = BandwidthRegime::kSqrt;
    p.program = program;
    p.workload = "stream-mix";
    points.push_back(std::move(p));
  }

  const runtime::SweepRunner runner({.num_threads = cli.threads});
  const auto outcomes = runtime::RunSweepCli(runner, cli, points).outcomes;
  std::size_t next = 0;

  std::printf("--- achieved IPC vs provided M(n) (hybrid core) ---\n");
  analysis::Table table({"n", "M(n) regime", "ops/cycle", "cycles", "IPC"});
  for (const int n : kWindows) {
    for (const auto regime : kRegimes) {
      const auto& o = outcomes[next++];
      const auto profile = memory::BandwidthProfile::ForRegime(regime);
      table.Row()
          .Cell(n)
          .Cell(profile.name())
          .Cell(profile.OpsPerCycle(n))
          .Cell(o.result.cycles)
          .Cell(o.result.Ipc(), 2);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("--- wire delay the layout pays for M(n) (hybrid, L=32) ---\n");
  // Analytic cost model: a SweepRunner::Map, not simulation points.
  const std::vector<double> wire_cm = runner.Map<double>(
      5 * std::size(kRegimes), [&](std::size_t i) {
        const std::int64_t n = std::int64_t{1} << (10 + 2 * (i / 3));
        const auto regime = kRegimes[i % 3];
        const vlsi::HybridLayout layout(
            32, 32, memory::BandwidthProfile::ForRegime(regime));
        return layout.At(n).wire_um / 1e4;
      });
  analysis::Table cost({"n", "M=Theta(1) wire [cm]", "M=Theta(sqrt n) [cm]",
                        "M=Theta(n) [cm]"});
  for (std::size_t r = 0; r < 5; ++r) {
    cost.Row()
        .Cell(std::int64_t{1} << (10 + 2 * r))
        .Cell(wire_cm[3 * r + 0])
        .Cell(wire_cm[3 * r + 1])
        .Cell(wire_cm[3 * r + 2]);
  }
  std::printf("%s", cost.ToString().c_str());
  std::printf(
      "\n(With M(n) = Theta(n) \"the wire delays must also grow linearly.\n"
      "In this case, all three processors are asymptotically the same.\")\n");

  std::printf(
      "\n--- locality models vs the Theta(1) root (Section 7 suggestion) "
      "---\n");
  analysis::Table dtable({"configuration", "cycles", "IPC",
                          "loads submitted", "L1D+L2 hits"});
  for (const auto locality : kLocalities) {
    const auto& o = outcomes[next++];
    const auto& m = o.result.stats.mem_hierarchy;
    dtable.Row()
        .Cell(locality == Locality::kNone ? "central cache only"
              : locality == Locality::kClusterCaches
                  ? "distributed caches"
                  : "L1D+L2 hierarchy")
        .Cell(o.result.cycles)
        .Cell(o.result.Ipc(), 2)
        .Cell(o.result.stats.load_count)
        .Cell(m.l1d_hits + m.l2_hits);
  }
  std::printf("%s", dtable.ToString().c_str());
  std::printf(
      "\n(Local hits complete without consuming the Theta(1) root link:\n"
      "\"it is conceivable that a processor could require substantially\n"
      "reduced memory bandwidth, resulting in dramatically reduced chip\n"
      "complexity.\")\n");

  std::printf("\n--- cache statistics under the sqrt regime, n = 64 ---\n");
  {
    const auto& o = outcomes[next++];
    std::printf(
        "  cycles=%llu IPC=%.2f loads=%llu stores=%llu\n",
        static_cast<unsigned long long>(o.result.cycles), o.result.Ipc(),
        static_cast<unsigned long long>(o.result.stats.load_count),
        static_cast<unsigned long long>(o.result.stats.store_count));
  }
  return runtime::ExportOutcomes(cli, outcomes) ? 0 : 1;
}
