// E10 -- Memory bandwidth as the dominating design factor (Section 7).
//
// "Our analytical results show that memory bandwidth is the dominating
// factor in the design of large-scale processors."
//
// Two views:
//  (1) Performance: IPC of a memory-streaming workload on the hybrid core
//      as the chip's accepted memory operations per cycle follow M(n).
//  (2) Cost: the wire delay the layout must pay to *provide* that M(n).
// Together they exhibit the paper's tension: bandwidth starves IPC when
// M(n) is small and wires when M(n) is large.
#include <cstdio>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "vlsi/vlsi.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace ultra;
  using memory::BandwidthRegime;
  std::printf("=== E10: memory-bandwidth pressure ===\n\n");

  // Load-dominated straight-line code: ~90% independent loads, no
  // accumulation chain to hide the admission bottleneck.
  const auto program = workloads::RandomMix({.num_instructions = 512,
                                             .load_fraction = 0.9,
                                             .store_fraction = 0.0,
                                             .memory_words = 1024,
                                             .seed = 21});

  std::printf("--- achieved IPC vs provided M(n) (hybrid core) ---\n");
  analysis::Table table({"n", "M(n) regime", "ops/cycle", "cycles", "IPC"});
  for (const int n : {16, 64, 256}) {
    for (const auto regime :
         {BandwidthRegime::kConstant, BandwidthRegime::kSqrt,
          BandwidthRegime::kLinear}) {
      core::CoreConfig cfg;
      cfg.window_size = n;
      cfg.cluster_size = std::min(16, n);
      cfg.predictor = core::PredictorKind::kBtfn;
      cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
      cfg.mem.regime = regime;
      cfg.mem.cache.num_banks = 16;
      auto proc = core::MakeProcessor(core::ProcessorKind::kHybrid, cfg);
      const auto result = proc->Run(program);
      const auto profile = memory::BandwidthProfile::ForRegime(regime);
      table.Row()
          .Cell(n)
          .Cell(profile.name())
          .Cell(profile.OpsPerCycle(n))
          .Cell(result.cycles)
          .Cell(result.Ipc(), 2);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("--- wire delay the layout pays for M(n) (hybrid, L=32) ---\n");
  analysis::Table cost({"n", "M=Theta(1) wire [cm]", "M=Theta(sqrt n) [cm]",
                        "M=Theta(n) [cm]"});
  for (int e = 10; e <= 18; e += 2) {
    const std::int64_t n = std::int64_t{1} << e;
    const auto wire = [&](BandwidthRegime r) {
      const vlsi::HybridLayout layout(
          32, 32, memory::BandwidthProfile::ForRegime(r));
      return layout.At(n).wire_um / 1e4;
    };
    cost.Row()
        .Cell(n)
        .Cell(wire(BandwidthRegime::kConstant))
        .Cell(wire(BandwidthRegime::kSqrt))
        .Cell(wire(BandwidthRegime::kLinear));
  }
  std::printf("%s", cost.ToString().c_str());
  std::printf(
      "\n(With M(n) = Theta(n) \"the wire delays must also grow linearly.\n"
      "In this case, all three processors are asymptotically the same.\")\n");

  std::printf(
      "\n--- distributed per-cluster caches (Section 7 suggestion) ---\n");
  {
    // Load-heavy straight-line code with a tiny footprint (8 words): after
    // one fill per cluster every access is a repeat, which the local caches
    // absorb; the thin M(n) = Theta(1) root stops mattering.
    const auto reuse = workloads::RandomMix({.num_instructions = 512,
                                             .load_fraction = 0.9,
                                             .store_fraction = 0.0,
                                             .memory_words = 8,
                                             .seed = 33});
    analysis::Table dtable(
        {"configuration", "cycles", "IPC", "loads submitted"});
    for (const bool distributed : {false, true}) {
      core::CoreConfig cfg;
      cfg.window_size = 64;
      cfg.cluster_size = 16;
      cfg.predictor = core::PredictorKind::kOracle;
      cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
      cfg.mem.regime = BandwidthRegime::kConstant;
      cfg.mem.cache.num_banks = 16;
      if (distributed) {
        cfg.mem.cluster_cache_leaves = 16;
        cfg.mem.cluster_cache_words = 64;
      }
      auto proc = core::MakeProcessor(core::ProcessorKind::kHybrid, cfg);
      const auto result = proc->Run(reuse);
      dtable.Row()
          .Cell(distributed ? "distributed caches" : "central cache only")
          .Cell(result.cycles)
          .Cell(result.Ipc(), 2)
          .Cell(result.stats.load_count);
    }
    std::printf("%s", dtable.ToString().c_str());
    std::printf(
        "\n(Local hits complete without consuming the Theta(1) root link:\n"
        "\"it is conceivable that a processor could require substantially\n"
        "reduced memory bandwidth, resulting in dramatically reduced chip\n"
        "complexity.\")\n");
  }

  std::printf("\n--- cache statistics under the sqrt regime, n = 64 ---\n");
  {
    core::CoreConfig cfg;
    cfg.window_size = 64;
    cfg.cluster_size = 16;
    cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    cfg.mem.regime = BandwidthRegime::kSqrt;
    auto proc = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
    const auto result = proc->Run(program);
    std::printf(
        "  cycles=%llu IPC=%.2f loads=%llu stores=%llu\n",
        static_cast<unsigned long long>(result.cycles), result.Ipc(),
        static_cast<unsigned long long>(result.stats.load_count),
        static_cast<unsigned long long>(result.stats.store_count));
  }
  return 0;
}
