// Simulator throughput benchmark (engineering, not a paper figure).
//
// Measures how fast the cycle-level models themselves run -- simulated
// cycles per wall second and committed instructions per wall second -- for
// every core kind across window sizes and workloads, and compares the
// incremental datapath evaluation (CoreConfig::datapath_eval =
// kIncremental, the default) against the full-recompute reference path on
// the largest Ultrascalar I configuration. The incremental path re-runs
// only dirty register columns and never allocates in steady state, so its
// advantage grows with n * L.
//
// Points are dispatched through runtime::SweepRunner (single worker by
// default so per-point wall times are not corrupted by oversubscription);
// each point's wall_seconds comes from the runner.
//
// Usage: bench_sim_throughput [--quick] [--threads=N] [--json=PATH]
//   --quick    smaller grid and shorter workloads (CI smoke run)
//   --json     output path (default BENCH_sim_throughput.json)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace {

struct Options {
  bool quick = false;
  int threads = 1;
  std::string json_path = "BENCH_sim_throughput.json";
};

Options ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  return opt;
}

const char* EvalName(ultra::core::DatapathEval eval) {
  return eval == ultra::core::DatapathEval::kIncremental ? "incremental"
                                                         : "full";
}

double PerSecond(std::uint64_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ultra;
  const Options opt = ParseArgs(argc, argv);
  std::printf("=== Simulator throughput (cycles/sec, instructions/sec) ===\n");
  std::printf("mode: %s\n\n", opt.quick ? "quick" : "full");

  struct Workload {
    std::string name;
    std::shared_ptr<const isa::Program> program;
  };
  const int chain_len = opt.quick ? 2048 : 8192;
  const int mix_len = opt.quick ? 1024 : 4096;
  const std::vector<Workload> suite = {
      {"chains(ilp=4)",
       std::make_shared<isa::Program>(workloads::DependencyChains(
           {.num_instructions = chain_len, .ilp = 4}))},
      {"mix", std::make_shared<isa::Program>(
                  workloads::RandomMix({.num_instructions = mix_len}))},
  };
  const std::vector<int> windows =
      opt.quick ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
  const int L = 32;
  const core::ProcessorKind kinds[] = {
      core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
      core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid};

  // --- Grid: every core kind, incremental evaluation. ---
  std::vector<runtime::SweepPoint> points;
  for (const auto kind : kinds) {
    for (const auto& w : suite) {
      for (const int n : windows) {
        runtime::SweepPoint point;
        point.kind = kind;
        point.config.window_size = n;
        point.config.num_regs = L;
        point.config.mem.mode = memory::MemTimingMode::kMagic;
        point.program = w.program;
        point.workload = w.name;
        points.push_back(std::move(point));
      }
    }
  }
  // --- Comparison: the largest Ultrascalar I window, both eval paths. ---
  const int big_n = opt.quick ? windows.back() : 1024;
  const std::size_t compare_base = points.size();
  for (const auto eval :
       {core::DatapathEval::kFullRecompute, core::DatapathEval::kIncremental}) {
    runtime::SweepPoint point;
    point.kind = core::ProcessorKind::kUltrascalarI;
    point.config.window_size = big_n;
    point.config.num_regs = L;
    point.config.datapath_eval = eval;
    point.config.mem.mode = memory::MemTimingMode::kMagic;
    point.program = suite[0].program;
    point.workload = suite[0].name;
    points.push_back(std::move(point));
  }

  const runtime::SweepRunner runner({.num_threads = opt.threads});
  const auto outcomes = runner.Run(points);
  for (const auto& o : outcomes) {
    if (!o.ok) {
      std::fprintf(stderr, "point %zu failed: %s\n", o.index,
                   o.error.c_str());
      return 1;
    }
  }

  std::size_t next = 0;
  for (const auto kind : kinds) {
    std::printf("--- %s ---\n",
                std::string(core::ProcessorKindName(kind)).c_str());
    analysis::Table table({"workload", "n", "cycles", "wall_s", "Mcyc/s",
                           "Minstr/s"});
    for (const auto& w : suite) {
      for (std::size_t i = 0; i < windows.size(); ++i) {
        const auto& o = outcomes[next++];
        analysis::Table& row = table.Row();
        row.Cell(w.name);
        row.Cell(static_cast<double>(o.config.window_size), 0);
        row.Cell(static_cast<double>(o.result.cycles), 0);
        row.Cell(o.wall_seconds, 4);
        row.Cell(PerSecond(o.result.cycles, o.wall_seconds) / 1e6, 3);
        row.Cell(PerSecond(o.result.committed, o.wall_seconds) / 1e6, 3);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  const auto& full = outcomes[compare_base];
  const auto& incr = outcomes[compare_base + 1];
  const double full_cps = PerSecond(full.result.cycles, full.wall_seconds);
  const double incr_cps = PerSecond(incr.result.cycles, incr.wall_seconds);
  const double speedup = full_cps > 0.0 ? incr_cps / full_cps : 0.0;
  std::printf(
      "--- UltrascalarI n=%d L=%d, %s: incremental vs full recompute ---\n",
      big_n, L, suite[0].name.c_str());
  std::printf("full:        %10.0f cycles/s  (%.4f s, %llu cycles)\n",
              full_cps, full.wall_seconds,
              static_cast<unsigned long long>(full.result.cycles));
  std::printf("incremental: %10.0f cycles/s  (%.4f s, %llu cycles)\n",
              incr_cps, incr.wall_seconds,
              static_cast<unsigned long long>(incr.result.cycles));
  std::printf("speedup:     %.2fx\n\n", speedup);
  if (full.result.cycles != incr.result.cycles ||
      full.result.committed != incr.result.committed) {
    std::fprintf(stderr,
                 "eval paths disagree: full %llu cycles / %llu committed, "
                 "incremental %llu cycles / %llu committed\n",
                 static_cast<unsigned long long>(full.result.cycles),
                 static_cast<unsigned long long>(full.result.committed),
                 static_cast<unsigned long long>(incr.result.cycles),
                 static_cast<unsigned long long>(incr.result.committed));
    return 1;
  }

  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  out << "{\n  \"mode\": \"" << (opt.quick ? "quick" : "full")
      << "\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    out << "    {\"kind\": \"" << core::ProcessorKindName(o.kind)
        << "\", \"workload\": \"" << o.workload
        << "\", \"n\": " << o.config.window_size
        << ", \"L\": " << o.config.num_regs << ", \"eval\": \""
        << EvalName(o.config.datapath_eval)
        << "\", \"cycles\": " << o.result.cycles
        << ", \"committed\": " << o.result.committed
        << ", \"wall_seconds\": " << o.wall_seconds
        << ", \"cycles_per_sec\": "
        << PerSecond(o.result.cycles, o.wall_seconds)
        << ", \"instructions_per_sec\": "
        << PerSecond(o.result.committed, o.wall_seconds) << "}"
        << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"usi_big_comparison\": {\"n\": " << big_n
      << ", \"L\": " << L << ", \"full_cycles_per_sec\": " << full_cps
      << ", \"incremental_cycles_per_sec\": " << incr_cps
      << ", \"speedup\": " << speedup << "}\n}\n";
  out.close();
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}
