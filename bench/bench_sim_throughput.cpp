// Simulator throughput benchmark (engineering, not a paper figure).
//
// Measures how fast the cycle-level models themselves run -- simulated
// cycles per wall second and committed instructions per wall second -- for
// every core kind across window sizes and workloads, and compares the
// incremental datapath evaluation (CoreConfig::datapath_eval =
// kIncremental, the default) against the full-recompute reference path on
// the largest Ultrascalar I configuration. The incremental path re-runs
// only dirty register columns and never allocates in steady state, so its
// advantage grows with n * L.
//
// Points are dispatched through runtime::SweepRunner (single worker by
// default so per-point wall times are not corrupted by oversubscription);
// each point's wall_seconds comes from the runner.
//
// Usage: bench_sim_throughput [--quick] [--threads=N] [--json=PATH]
//   --quick    smaller grid and shorter workloads (CI smoke run)
//   --json     output path (default BENCH_sim_throughput.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "core/functional_sim_cache.hpp"
#include "fault/fault.hpp"
#include "runtime/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workloads.hpp"

namespace {

struct Options {
  bool quick = false;
  int threads = 1;
  std::string json_path = "BENCH_sim_throughput.json";
};

Options ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(std::strlen("--json="));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  return opt;
}

const char* EvalName(ultra::core::DatapathEval eval) {
  switch (eval) {
    case ultra::core::DatapathEval::kFullRecompute:
      return "full";
    case ultra::core::DatapathEval::kIncremental:
      return "incremental";
    case ultra::core::DatapathEval::kChecked:
      return "checked";
    case ultra::core::DatapathEval::kPacked:
      return "packed";
  }
  return "unknown";
}

double PerSecond(std::uint64_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ultra;
  const Options opt = ParseArgs(argc, argv);
  std::printf("=== Simulator throughput (cycles/sec, instructions/sec) ===\n");
  std::printf("mode: %s\n\n", opt.quick ? "quick" : "full");

  struct Workload {
    std::string name;
    std::shared_ptr<const isa::Program> program;
  };
  const int chain_len = opt.quick ? 2048 : 8192;
  const int mix_len = opt.quick ? 1024 : 4096;
  const std::vector<Workload> suite = {
      {"chains(ilp=4)",
       std::make_shared<isa::Program>(workloads::DependencyChains(
           {.num_instructions = chain_len, .ilp = 4}))},
      {"mix", std::make_shared<isa::Program>(
                  workloads::RandomMix({.num_instructions = mix_len}))},
  };
  const std::vector<int> windows =
      opt.quick ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
  const int L = 32;
  const core::ProcessorKind kinds[] = {
      core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
      core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid};

  // --- Grid: every core kind, incremental evaluation. ---
  std::vector<runtime::SweepPoint> points;
  for (const auto kind : kinds) {
    for (const auto& w : suite) {
      for (const int n : windows) {
        runtime::SweepPoint point;
        point.kind = kind;
        point.config.window_size = n;
        point.config.num_regs = L;
        point.config.mem.mode = memory::MemTimingMode::kMagic;
        point.program = w.program;
        point.workload = w.name;
        points.push_back(std::move(point));
      }
    }
  }
  // --- Comparison: the largest Ultrascalar I window, both eval paths. ---
  const int big_n = opt.quick ? windows.back() : 1024;
  const std::size_t compare_base = points.size();
  for (const auto eval :
       {core::DatapathEval::kFullRecompute, core::DatapathEval::kIncremental}) {
    runtime::SweepPoint point;
    point.kind = core::ProcessorKind::kUltrascalarI;
    point.config.window_size = big_n;
    point.config.num_regs = L;
    point.config.datapath_eval = eval;
    point.config.mem.mode = memory::MemTimingMode::kMagic;
    point.program = suite[0].program;
    point.workload = suite[0].name;
    points.push_back(std::move(point));
  }
  // --- Packed comparison: every kind at the largest window, incremental
  // vs bit-packed word-parallel evaluation. Also a differential guard: the
  // two paths must agree cycle-for-cycle. ---
  const std::size_t packed_base = points.size();
  for (const auto kind : kinds) {
    for (const auto eval :
         {core::DatapathEval::kIncremental, core::DatapathEval::kPacked}) {
      runtime::SweepPoint point;
      point.kind = kind;
      point.config.window_size = big_n;
      point.config.num_regs = L;
      point.config.datapath_eval = eval;
      point.config.mem.mode = memory::MemTimingMode::kMagic;
      point.program = suite[0].program;
      point.workload = suite[0].name;
      points.push_back(std::move(point));
    }
  }
  // --- Fallback-free guard: packed mode keeps its packed cycle loop under
  // attached telemetry and under fault plans (there is no transparent
  // fallback to the incremental loop). Each pair must agree with the
  // incremental reference byte-for-byte and report zero fallbacks. ---
  struct FallbackConfig {
    const char* name;
    bool with_telemetry;
    bool with_fault_plan;
  };
  const FallbackConfig ff_configs[] = {
      {"telemetry", true, false},
      {"fault_plan", false, true},
  };
  const auto ff_plan = std::make_shared<const fault::FaultPlan>(
      fault::FaultPlan::Random(17, 0.01, 20'000));
  // One sink per telemetry point: a RunTelemetry serves one Run at a time.
  std::vector<std::unique_ptr<telemetry::RunTelemetry>> telem_slots;
  const std::size_t ff_base = points.size();
  for (const auto kind : kinds) {
    for (const auto& fc : ff_configs) {
      for (const auto eval :
           {core::DatapathEval::kIncremental, core::DatapathEval::kPacked}) {
        runtime::SweepPoint point;
        point.kind = kind;
        point.config.window_size = big_n;
        point.config.num_regs = L;
        point.config.datapath_eval = eval;
        point.config.mem.mode = memory::MemTimingMode::kMagic;
        if (fc.with_telemetry) {
          telem_slots.push_back(std::make_unique<telemetry::RunTelemetry>());
          point.config.telemetry = telem_slots.back().get();
        }
        if (fc.with_fault_plan) point.config.fault_plan = ff_plan;
        point.program = suite[0].program;
        point.workload = suite[0].name;
        points.push_back(std::move(point));
      }
    }
  }

  // Batching off for the measurement grid: lockstep followers would adopt
  // their leader's result without running, zeroing the per-point wall times
  // this benchmark exists to measure. The ensemble section below measures
  // batching itself.
  const runtime::SweepRunner runner(
      {.num_threads = opt.threads, .ensemble_batching = false});
  const auto outcomes = runner.Run(points);
  for (const auto& o : outcomes) {
    if (!o.ok) {
      std::fprintf(stderr, "point %zu failed: %s\n", o.index,
                   o.error.c_str());
      return 1;
    }
  }

  std::size_t next = 0;
  for (const auto kind : kinds) {
    std::printf("--- %s ---\n",
                std::string(core::ProcessorKindName(kind)).c_str());
    analysis::Table table({"workload", "n", "cycles", "wall_s", "Mcyc/s",
                           "Minstr/s"});
    for (const auto& w : suite) {
      for (std::size_t i = 0; i < windows.size(); ++i) {
        const auto& o = outcomes[next++];
        analysis::Table& row = table.Row();
        row.Cell(w.name);
        row.Cell(static_cast<double>(o.config.window_size), 0);
        row.Cell(static_cast<double>(o.result.cycles), 0);
        row.Cell(o.wall_seconds, 4);
        row.Cell(PerSecond(o.result.cycles, o.wall_seconds) / 1e6, 3);
        row.Cell(PerSecond(o.result.committed, o.wall_seconds) / 1e6, 3);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  const auto& full = outcomes[compare_base];
  const auto& incr = outcomes[compare_base + 1];
  const double full_cps = PerSecond(full.result.cycles, full.wall_seconds);
  const double incr_cps = PerSecond(incr.result.cycles, incr.wall_seconds);
  const double speedup = full_cps > 0.0 ? incr_cps / full_cps : 0.0;
  std::printf(
      "--- UltrascalarI n=%d L=%d, %s: incremental vs full recompute ---\n",
      big_n, L, suite[0].name.c_str());
  std::printf("full:        %10.0f cycles/s  (%.4f s, %llu cycles)\n",
              full_cps, full.wall_seconds,
              static_cast<unsigned long long>(full.result.cycles));
  std::printf("incremental: %10.0f cycles/s  (%.4f s, %llu cycles)\n",
              incr_cps, incr.wall_seconds,
              static_cast<unsigned long long>(incr.result.cycles));
  std::printf("speedup:     %.2fx\n\n", speedup);
  if (full.result.cycles != incr.result.cycles ||
      full.result.committed != incr.result.committed) {
    std::fprintf(stderr,
                 "eval paths disagree: full %llu cycles / %llu committed, "
                 "incremental %llu cycles / %llu committed\n",
                 static_cast<unsigned long long>(full.result.cycles),
                 static_cast<unsigned long long>(full.result.committed),
                 static_cast<unsigned long long>(incr.result.cycles),
                 static_cast<unsigned long long>(incr.result.committed));
    return 1;
  }

  // --- Packed vs incremental, every kind at the largest window. ---
  std::printf("--- n=%d L=%d, %s: packed vs incremental ---\n", big_n, L,
              suite[0].name.c_str());
  struct PackedRow {
    core::ProcessorKind kind;
    const char* config = "plain";
    double incr_cps = 0.0;
    double packed_cps = 0.0;
    double speedup = 0.0;
    std::uint64_t fallbacks = 0;
  };
  // Differential + fallback gate shared by the plain and the
  // telemetry/fault-plan sections: the packed path must agree with the
  // incremental reference byte-for-byte and must never have fallen back.
  const auto check_packed_pair = [&](const runtime::SweepOutcome& pincr,
                                     const runtime::SweepOutcome& ppacked,
                                     core::ProcessorKind kind,
                                     const char* config_name) {
    if (pincr.result.cycles != ppacked.result.cycles ||
        pincr.result.committed != ppacked.result.committed ||
        pincr.result.regs != ppacked.result.regs) {
      std::fprintf(
          stderr,
          "packed eval diverges from incremental on %s (%s): %llu/%llu "
          "cycles, %llu/%llu committed\n",
          std::string(core::ProcessorKindName(kind)).c_str(), config_name,
          static_cast<unsigned long long>(pincr.result.cycles),
          static_cast<unsigned long long>(ppacked.result.cycles),
          static_cast<unsigned long long>(pincr.result.committed),
          static_cast<unsigned long long>(ppacked.result.committed));
      return false;
    }
    if (ppacked.result.stats.fallback_count != 0) {
      std::fprintf(stderr,
                   "packed eval fell back %llu times on %s (%s); packed mode "
                   "must be fallback-free\n",
                   static_cast<unsigned long long>(
                       ppacked.result.stats.fallback_count),
                   std::string(core::ProcessorKindName(kind)).c_str(),
                   config_name);
      return false;
    }
    return true;
  };
  std::vector<PackedRow> packed_rows;
  {
    analysis::Table table(
        {"kind", "incr Mcyc/s", "packed Mcyc/s", "speedup", "fallbacks"});
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      const auto& pincr = outcomes[packed_base + 2 * k];
      const auto& ppacked = outcomes[packed_base + 2 * k + 1];
      if (!check_packed_pair(pincr, ppacked, kinds[k], "plain")) return 1;
      PackedRow row;
      row.kind = kinds[k];
      row.incr_cps = PerSecond(pincr.result.cycles, pincr.wall_seconds);
      row.packed_cps = PerSecond(ppacked.result.cycles, ppacked.wall_seconds);
      row.speedup = row.incr_cps > 0.0 ? row.packed_cps / row.incr_cps : 0.0;
      row.fallbacks = ppacked.result.stats.fallback_count;
      packed_rows.push_back(row);
      analysis::Table& r = table.Row();
      r.Cell(std::string(core::ProcessorKindName(kinds[k])));
      r.Cell(row.incr_cps / 1e6, 3);
      r.Cell(row.packed_cps / 1e6, 3);
      r.Cell(row.speedup, 2);
      r.Cell(static_cast<double>(row.fallbacks), 0);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // --- Packed under telemetry and fault plans (fallback-free configs). ---
  std::printf(
      "--- n=%d L=%d, %s: packed under telemetry / fault plans ---\n", big_n,
      L, suite[0].name.c_str());
  std::vector<PackedRow> ff_rows;
  {
    analysis::Table table({"kind", "config", "incr Mcyc/s", "packed Mcyc/s",
                           "speedup", "fallbacks"});
    std::size_t idx = ff_base;
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      for (const auto& fc : ff_configs) {
        const auto& pincr = outcomes[idx++];
        const auto& ppacked = outcomes[idx++];
        if (!check_packed_pair(pincr, ppacked, kinds[k], fc.name)) return 1;
        PackedRow row;
        row.kind = kinds[k];
        row.config = fc.name;
        row.incr_cps = PerSecond(pincr.result.cycles, pincr.wall_seconds);
        row.packed_cps =
            PerSecond(ppacked.result.cycles, ppacked.wall_seconds);
        row.speedup = row.incr_cps > 0.0 ? row.packed_cps / row.incr_cps : 0.0;
        row.fallbacks = ppacked.result.stats.fallback_count;
        ff_rows.push_back(row);
        analysis::Table& r = table.Row();
        r.Cell(std::string(core::ProcessorKindName(kinds[k])));
        r.Cell(fc.name);
        r.Cell(row.incr_cps / 1e6, 3);
        r.Cell(row.packed_cps / 1e6, 3);
        r.Cell(row.speedup, 2);
        r.Cell(static_cast<double>(row.fallbacks), 0);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  // --- Ensemble batching: the same sweep with batching off vs on. The
  // sweep repeats each configuration so interchangeable points exercise the
  // lockstep-follower path, and the architectural check pulls in the
  // functional oracle, which batching warms once per program. The
  // functional-sim cache is cleared before each run so both start cold. ---
  const int ens_repeats = 3;
  std::vector<runtime::SweepPoint> ens_points;
  for (const auto kind : kinds) {
    for (const auto& w : suite) {
      for (int r = 0; r < ens_repeats; ++r) {
        runtime::SweepPoint point;
        point.kind = kind;
        point.config.window_size = windows.front();
        point.config.num_regs = L;
        point.config.mem.mode = memory::MemTimingMode::kMagic;
        point.program = w.program;
        point.workload = w.name;
        ens_points.push_back(std::move(point));
      }
    }
  }
  const auto timed_sweep = [&](bool batching) {
    core::FunctionalSimCache::Global().Clear();
    runtime::SweepOptions options;
    options.num_threads = opt.threads;
    options.check_architectural_state = true;
    options.ensemble_batching = batching;
    const runtime::SweepRunner ens_runner(options);
    const auto start = std::chrono::steady_clock::now();
    auto report = ens_runner.RunWithReport(ens_points);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    for (const auto& o : report.outcomes) {
      if (!o.ok) {
        std::fprintf(stderr, "ensemble point %zu failed: %s\n", o.index,
                     o.error.c_str());
        std::exit(1);
      }
    }
    return std::make_pair(wall, std::move(report));
  };
  const auto [unbatched_wall, unbatched_report] = timed_sweep(false);
  const auto [batched_wall, batched_report] = timed_sweep(true);
  for (std::size_t i = 0; i < ens_points.size(); ++i) {
    const auto& a = unbatched_report.outcomes[i];
    const auto& b = batched_report.outcomes[i];
    if (a.result.cycles != b.result.cycles ||
        a.result.committed != b.result.committed ||
        a.result.regs != b.result.regs || a.result.memory != b.result.memory) {
      std::fprintf(stderr,
                   "ensemble batching changed point %zu: %llu vs %llu cycles\n",
                   i, static_cast<unsigned long long>(a.result.cycles),
                   static_cast<unsigned long long>(b.result.cycles));
      return 1;
    }
  }
  const auto counter = [](const runtime::SweepReport& report,
                          std::string_view name) -> std::uint64_t {
    const telemetry::MetricValue* v = report.runner_metrics.Find(name);
    return v != nullptr ? v->value : 0;
  };
  const std::uint64_t prewarms = counter(batched_report,
                                         "sweep.oracle_prewarms");
  const std::uint64_t followers = counter(batched_report,
                                          "sweep.ensemble_followers");
  const double ens_speedup =
      batched_wall > 0.0 ? unbatched_wall / batched_wall : 0.0;
  std::printf("--- ensemble batching (%zu points, %d repeats, oracle checks, "
              "threads=%d) ---\n",
              ens_points.size(), ens_repeats, opt.threads);
  std::printf("unbatched: %.4f s\n", unbatched_wall);
  std::printf("batched:   %.4f s  (%llu oracle prewarms, %llu lockstep "
              "followers)\n",
              batched_wall, static_cast<unsigned long long>(prewarms),
              static_cast<unsigned long long>(followers));
  std::printf("speedup:   %.2fx\n\n", ens_speedup);

  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench_mode\": \"" << (opt.quick ? "quick" : "full")
      << "\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    out << "    {\"kind\": \"" << core::ProcessorKindName(o.kind)
        << "\", \"workload\": \"" << o.workload
        << "\", \"n\": " << o.config.window_size
        << ", \"L\": " << o.config.num_regs << ", \"eval\": \""
        << EvalName(o.config.datapath_eval)
        << "\", \"ensemble_batching\": false"
        << ", \"cycles\": " << o.result.cycles
        << ", \"committed\": " << o.result.committed
        << ", \"wall_seconds\": " << o.wall_seconds
        << ", \"cycles_per_sec\": "
        << PerSecond(o.result.cycles, o.wall_seconds)
        << ", \"instructions_per_sec\": "
        << PerSecond(o.result.committed, o.wall_seconds) << "}"
        << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"usi_big_comparison\": {\"n\": " << big_n
      << ", \"L\": " << L << ", \"full_cycles_per_sec\": " << full_cps
      << ", \"incremental_cycles_per_sec\": " << incr_cps
      << ", \"speedup\": " << speedup << "},\n";
  out << "  \"packed_comparison\": {\"n\": " << big_n << ", \"L\": " << L
      << ", \"workload\": \"" << suite[0].name << "\", \"kinds\": [\n";
  for (std::size_t k = 0; k < packed_rows.size(); ++k) {
    const PackedRow& row = packed_rows[k];
    out << "    {\"kind\": \"" << core::ProcessorKindName(row.kind)
        << "\", \"incremental_cycles_per_sec\": " << row.incr_cps
        << ", \"packed_cycles_per_sec\": " << row.packed_cps
        << ", \"speedup\": " << row.speedup
        << ", \"fallback_count\": " << row.fallbacks << "}"
        << (k + 1 < packed_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fallback_free\": [\n";
  for (std::size_t k = 0; k < ff_rows.size(); ++k) {
    const PackedRow& row = ff_rows[k];
    out << "    {\"kind\": \"" << core::ProcessorKindName(row.kind)
        << "\", \"config\": \"" << row.config
        << "\", \"incremental_cycles_per_sec\": " << row.incr_cps
        << ", \"packed_cycles_per_sec\": " << row.packed_cps
        << ", \"speedup\": " << row.speedup
        << ", \"fallback_count\": " << row.fallbacks << "}"
        << (k + 1 < ff_rows.size() ? "," : "") << "\n";
  }
  out << "  ]},\n";
  out << "  \"ensemble\": {\"points\": " << ens_points.size()
      << ", \"repeats\": " << ens_repeats
      << ", \"check_architectural_state\": true"
      << ", \"unbatched_wall_seconds\": " << unbatched_wall
      << ", \"batched_wall_seconds\": " << batched_wall
      << ", \"speedup\": " << ens_speedup
      << ", \"oracle_prewarms\": " << prewarms
      << ", \"lockstep_followers\": " << followers << "}\n}\n";
  out.close();
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}
