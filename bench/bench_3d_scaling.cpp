// E8 -- Three-dimensional packaging bounds (Section 7).
//
// Paper results:
//   * Ultrascalar I, small M: volume Theta(n L^{3/2}),
//     wire Theta(n^{1/3} L^{1/2}); M = Omega(n^{2/3+e}) adds
//     Theta(M(n)^{3/2}) volume.
//   * Ultrascalar II: volume Theta(n^2 + L^2).
//   * Hybrid: optimal cluster Theta(L^{3/4}), volume Theta(n L^{3/4}).
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

int main() {
  using namespace ultra;
  using memory::BandwidthProfile;
  using memory::BandwidthRegime;

  std::printf("=== E8: three-dimensional packaging ===\n\n");
  const auto profile = BandwidthProfile::ForRegime(BandwidthRegime::kConstant);

  {
    const int L = 32;
    const vlsi::UltrascalarILayout3D usi(L, profile);
    const vlsi::UltrascalarIILayout3D usii(L);
    std::printf("--- volume and wire vs n (L = %d) ---\n", L);
    analysis::Table table({"n", "USI wire [cm]", "USI vol [cm^3]",
                           "USII vol [cm^3]"});
    std::vector<double> ns, wires, vols, vols2;
    for (int e = 8; e <= 20; e += 2) {
      const std::int64_t n = std::int64_t{1} << e;
      const auto g = usi.At(n);
      table.Row()
          .Cell(n)
          .Cell(g.wire_um / 1e4)
          .Cell(g.volume_um3() / 1e12)
          .Cell(usii.VolumeUm3(n) / 1e12);
      ns.push_back(static_cast<double>(n));
      wires.push_back(g.wire_um);
      vols.push_back(g.volume_um3());
      vols2.push_back(usii.VolumeUm3(n));
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "  USI wire exponent:  %.3f (paper: 1/3)\n"
        "  USI vol exponent:   %.3f (paper: 1)\n"
        "  USII vol exponent:  %.3f (paper: 2)\n\n",
        vlsi::FitPowerLaw(ns, wires).exponent,
        vlsi::FitPowerLaw(ns, vols).exponent,
        vlsi::FitPowerLaw(ns, vols2).exponent);
  }

  {
    std::printf("--- volume vs L at n = 2^22 ---\n");
    analysis::Table table({"L", "USI vol [cm^3]", "hybrid(C*) vol [cm^3]",
                           "C*", "L^{3/4}"});
    std::vector<double> ls, usivols, hyvols, cs;
    for (const int L : {16, 64, 256, 1024}) {
      const vlsi::UltrascalarILayout3D usi(L, profile);
      const int c = vlsi::OptimalClusterSize3D(L, 1 << 22, profile);
      const vlsi::HybridLayout3D hybrid(L, c, profile);
      table.Row()
          .Cell(L)
          .Cell(usi.At(1 << 22).volume_um3() / 1e12)
          .Cell(hybrid.At(1 << 22).volume_um3() / 1e12)
          .Cell(c)
          .Cell(std::pow(static_cast<double>(L), 0.75), 1);
      ls.push_back(L);
      usivols.push_back(usi.At(1 << 22).volume_um3());
      hyvols.push_back(hybrid.At(1 << 22).volume_um3());
      cs.push_back(c);
    }
    std::printf("%s", table.ToString().c_str());
    std::printf(
        "  USI volume L-exponent:    %.3f (paper: 3/2)\n"
        "  hybrid volume L-exponent: %.3f (paper: 3/4)\n"
        "  C*(L) exponent:           %.3f (paper: 3/4)\n\n",
        vlsi::FitPowerLaw(ls, usivols).exponent,
        vlsi::FitPowerLaw(ls, hyvols).exponent,
        vlsi::FitPowerLaw(ls, cs).exponent);
  }

  {
    std::printf("--- large memory bandwidth in 3-D ---\n");
    // M(n) = Omega(n^{2/3+e}): volume needs an extra Theta(M(n)^{3/2}).
    const auto big = BandwidthProfile("M(n)=n^0.8", 8.0, 0.8);
    const vlsi::UltrascalarILayout3D usi(32, big);
    std::vector<double> ns, vols;
    for (int e = 12; e <= 24; e += 2) {
      const std::int64_t n = std::int64_t{1} << e;
      ns.push_back(static_cast<double>(n));
      vols.push_back(usi.At(n).volume_um3());
    }
    const auto fit = vlsi::FitPowerLaw(ns, vols);
    std::printf(
        "  M(n)=8 n^0.8: USI volume exponent %.3f (paper: (0.8)*(3/2)=1.2)\n",
        fit.exponent);
  }
  return 0;
}
