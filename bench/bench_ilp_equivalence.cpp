// E9 -- ILP equivalence (the Section 1/2 functional claim).
//
// "All three processors ... implement identical instruction sets, with
// identical scheduling policies. The only differences between the
// processors are in their VLSI complexities."
//
// We run a battery of kernels and generated workloads on all four models
// with identical windows, predictors, and memory timing. The Ultrascalar I
// and the hybrid must match the ideal out-of-order baseline cycle for
// cycle; the batch-mode Ultrascalar II pays its documented refill idle time.
// The (workload x processor) grid runs under the runtime::SweepRunner with
// architectural-state checking on: every point is additionally verified
// against the shared functional-simulation oracle.
//
// Usage: bench_ilp_equivalence [--threads=N] [--csv=PATH] [--json=PATH]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace ultra;
  const auto cli = runtime::ParseSweepCli(argc, argv);
  std::printf("=== E9: ILP equivalence across microarchitectures ===\n\n");

  core::CoreConfig cfg;
  cfg.window_size = 64;
  cfg.cluster_size = 16;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  struct Workload {
    std::string name;
    std::shared_ptr<const isa::Program> program;
  };
  std::vector<Workload> workloads;
  const auto add = [&](std::string name, isa::Program program) {
    workloads.push_back(
        {std::move(name),
         std::make_shared<const isa::Program>(std::move(program))});
  };
  add("figure3", workloads::Figure3Example());
  add("fib(20)", workloads::Fibonacci(20));
  add("dot(32)", workloads::DotProduct(32));
  add("memcpy(48)", workloads::MemCopy(48));
  add("bubble(12)", workloads::BubbleSort(12));
  add("indirect(24)", workloads::IndirectSum(24));
  add("chains(ilp=8)",
      workloads::DependencyChains({.num_instructions = 256, .ilp = 8}));
  add("chains(ilp=1)",
      workloads::DependencyChains({.num_instructions = 128, .ilp = 1}));
  add("mix(256)", workloads::RandomMix({.num_instructions = 256}));
  add("branchstorm(64)", workloads::BranchStorm(64));

  const core::ProcessorKind kinds[] = {
      core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
      core::ProcessorKind::kHybrid, core::ProcessorKind::kUltrascalarII};
  std::vector<runtime::SweepPoint> points;
  for (const auto& w : workloads) {
    for (const auto kind : kinds) {
      points.push_back({kind, cfg, w.program, w.name});
    }
  }
  const runtime::SweepRunner runner(
      {.num_threads = cli.threads, .check_architectural_state = true});
  const auto outcomes = runner.Run(points);

  analysis::Table table({"workload", "insns", "ideal cyc", "USI cyc",
                         "hybrid cyc", "USII cyc", "USI==ideal",
                         "hyb==ideal", "USII/ideal"});
  int equal_usi = 0;
  int equal_hybrid = 0;
  int arch_failures = 0;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const auto* row_outcomes = &outcomes[w * std::size(kinds)];
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      if (!row_outcomes[k].ok) {
        ++arch_failures;
        std::fprintf(stderr, "ARCH MISMATCH %s on %s: %s\n",
                     workloads[w].name.c_str(),
                     std::string(core::ProcessorKindName(row_outcomes[k].kind))
                         .c_str(),
                     row_outcomes[k].error.c_str());
      }
    }
    const auto& ideal = row_outcomes[0].result;
    const bool usi_eq = row_outcomes[1].result.cycles == ideal.cycles;
    const bool hyb_eq = row_outcomes[2].result.cycles == ideal.cycles;
    equal_usi += usi_eq;
    equal_hybrid += hyb_eq;
    table.Row()
        .Cell(workloads[w].name)
        .Cell(ideal.committed)
        .Cell(ideal.cycles)
        .Cell(row_outcomes[1].result.cycles)
        .Cell(row_outcomes[2].result.cycles)
        .Cell(row_outcomes[3].result.cycles)
        .Cell(usi_eq ? "yes" : "NO")
        .Cell(hyb_eq ? "yes" : "NO")
        .Cell(static_cast<double>(row_outcomes[3].result.cycles) /
                  static_cast<double>(ideal.cycles),
              2);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "UltrascalarI matched ideal on %d/%zu workloads; hybrid on %d/%zu.\n"
      "(The hybrid can trail when the window binds: its deallocation unit is\n"
      "a whole cluster. The UltrascalarII ratio > 1 is the paper's stated\n"
      "batch-refill inefficiency.)\n",
      equal_usi, workloads.size(), equal_hybrid, workloads.size());
  if (!runtime::ExportOutcomes(cli, outcomes)) return 1;
  return arch_failures == 0 ? 0 : 1;
}
