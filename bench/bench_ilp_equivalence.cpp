// E9 -- ILP equivalence (the Section 1/2 functional claim).
//
// "All three processors ... implement identical instruction sets, with
// identical scheduling policies. The only differences between the
// processors are in their VLSI complexities."
//
// We run a battery of kernels and generated workloads on all four models
// with identical windows, predictors, and memory timing. The Ultrascalar I
// and the hybrid must match the ideal out-of-order baseline cycle for
// cycle; the batch-mode Ultrascalar II pays its documented refill idle time.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace ultra;
  std::printf("=== E9: ILP equivalence across microarchitectures ===\n\n");

  core::CoreConfig cfg;
  cfg.window_size = 64;
  cfg.cluster_size = 16;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;

  struct Workload {
    std::string name;
    isa::Program program;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"figure3", workloads::Figure3Example()});
  workloads.push_back({"fib(20)", workloads::Fibonacci(20)});
  workloads.push_back({"dot(32)", workloads::DotProduct(32)});
  workloads.push_back({"memcpy(48)", workloads::MemCopy(48)});
  workloads.push_back({"bubble(12)", workloads::BubbleSort(12)});
  workloads.push_back({"indirect(24)", workloads::IndirectSum(24)});
  workloads.push_back(
      {"chains(ilp=8)",
       workloads::DependencyChains({.num_instructions = 256, .ilp = 8})});
  workloads.push_back(
      {"chains(ilp=1)",
       workloads::DependencyChains({.num_instructions = 128, .ilp = 1})});
  workloads.push_back(
      {"mix(256)", workloads::RandomMix({.num_instructions = 256})});
  workloads.push_back({"branchstorm(64)", workloads::BranchStorm(64)});

  analysis::Table table({"workload", "insns", "ideal cyc", "USI cyc",
                         "hybrid cyc", "USII cyc", "USI==ideal",
                         "hyb==ideal", "USII/ideal"});
  int equal_usi = 0;
  int equal_hybrid = 0;
  for (const auto& w : workloads) {
    std::vector<core::RunResult> results;
    for (const auto kind :
         {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
          core::ProcessorKind::kHybrid, core::ProcessorKind::kUltrascalarII}) {
      results.push_back(core::MakeProcessor(kind, cfg)->Run(w.program));
    }
    const auto& ideal = results[0];
    const bool usi_eq = results[1].cycles == ideal.cycles;
    const bool hyb_eq = results[2].cycles == ideal.cycles;
    equal_usi += usi_eq;
    equal_hybrid += hyb_eq;
    table.Row()
        .Cell(w.name)
        .Cell(ideal.committed)
        .Cell(ideal.cycles)
        .Cell(results[1].cycles)
        .Cell(results[2].cycles)
        .Cell(results[3].cycles)
        .Cell(usi_eq ? "yes" : "NO")
        .Cell(hyb_eq ? "yes" : "NO")
        .Cell(static_cast<double>(results[3].cycles) /
                  static_cast<double>(ideal.cycles),
              2);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "UltrascalarI matched ideal on %d/%zu workloads; hybrid on %d/%zu.\n"
      "(The hybrid can trail when the window binds: its deallocation unit is\n"
      "a whole cluster. The UltrascalarII ratio > 1 is the paper's stated\n"
      "batch-refill inefficiency.)\n",
      equal_usi, workloads.size(), equal_hybrid, workloads.size());
  return 0;
}
