// E16 -- Memory-hierarchy sweeps: IPC vs icache size, L2 size, and
// prefetch depth (ROADMAP item 3).
//
// Section 7 of the paper reduces memory to the M(n) bandwidth knob; the
// Performance-Optimum Superscalar Architecture study (arxiv 1204.2809)
// shows the interesting design points only appear once cache geometry and
// latency are swept alongside the window. This bench runs those axes
// through the runtime::SweepRunner across all four cores:
//
//  (1) icache capacity vs a loop whose straight-line body exceeds it
//      (workloads::CodeFootprint): instruction supply throttles IPC.
//  (2) L2 capacity vs a strided array walk (workloads::StridedSweep):
//      passes re-miss until the array fits.
//  (3) Stride-prefetch depth on a bandwidth-starved backing tier
//      (kBandwidthLimited): prefetch fills bypass the M(n) admission
//      bottleneck, so IPC lost to (2)'s misses comes back.
//
// The binary doubles as the CI gate for the hierarchy model: it exits
// non-zero unless (a) miss rates are non-increasing in cache size on the
// stride kernel, (b) IPC degrades with smaller icache/L2 and recovers with
// prefetching on at least two cores, and (c) a recorded trace of the
// stride kernel replays -- through both the text and binary codecs -- to a
// byte-identical RunResult.
//
// Usage: bench_memory_hierarchy [--threads=N] [--csv=PATH] [--json=PATH]
//                               [--journal=PATH] [--resume]
// Without --json the results land in BENCH_memory_hierarchy.json.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/checkpoint_util.hpp"
#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

constexpr core::ProcessorKind kCores[] = {
    core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
    core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid};

// The data-side base configuration shared by every point: a small L1D so
// the L2 and prefetch axes are the visible knobs.
core::CoreConfig BaseConfig() {
  core::CoreConfig cfg;
  cfg.window_size = 64;
  cfg.cluster_size = 16;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  return cfg;
}

memory::CacheLevelConfig Level(int sets, int ways, int block_bytes,
                               int hit_latency, int miss_latency) {
  memory::CacheLevelConfig level;
  level.enabled = true;
  level.sets = sets;
  level.ways = ways;
  level.block_bytes = block_bytes;
  level.hit_latency = hit_latency;
  level.miss_latency = miss_latency;
  return level;
}

/// Serializes everything a RunResult carries (timing, stats, architectural
/// state) so the trace-replay gate can demand byte-identity, not just
/// equal IPC.
std::vector<std::uint8_t> EncodeResult(const core::RunResult& r) {
  persist::Encoder e;
  core::SavePartialResult(e, r);
  const core::MemHierarchyCounters& m = r.stats.mem_hierarchy;
  for (const std::uint64_t v :
       {m.l1d_hits, m.l1d_misses, m.l1d_writebacks, m.l2_hits, m.l2_misses,
        m.l2_writebacks, m.icache_hits, m.icache_misses,
        m.icache_stall_cycles, m.prefetch_issued, m.prefetch_fills,
        m.prefetch_useful}) {
    e.U64(v);
  }
  e.U32(static_cast<std::uint32_t>(r.regs.size()));
  for (const isa::Word w : r.regs) e.U32(w);
  e.U32(static_cast<std::uint32_t>(r.memory.size()));
  for (const auto& [addr, value] : r.memory) {
    e.U32(addr);
    e.U32(value);
  }
  return e.Take();
}

int failures = 0;

void Gate(bool ok, const char* what) {
  if (!ok) {
    ++failures;
    std::printf("GATE FAILED: %s\n", what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = runtime::ParseSweepCli(argc, argv);
  if (cli.json_path.empty()) cli.json_path = "BENCH_memory_hierarchy.json";
  std::printf("=== E16: memory-hierarchy sweeps ===\n\n");

  // --- workloads -------------------------------------------------------
  // ~3 KiB loop body: re-misses every iteration in icaches smaller than
  // that, hits every iteration in larger ones.
  const auto footprint = std::make_shared<isa::Program>(
      workloads::CodeFootprint({.body_instructions = 768, .iterations = 24}));
  // 16 KiB array walked at a 32-byte stride: larger than L1D, spans the L2
  // axis, and the constant stride is what the prefetcher locks onto.
  const auto stride = std::make_shared<isa::Program>(workloads::StridedSweep(
      {.array_words = 4096, .stride_words = 8, .passes = 6, .unroll = 4}));
  // 32 KiB dependent walk for the prefetch axis: each address depends on
  // the previous load, so the window cannot hide the misses itself and
  // every pass is latency-bound without prefetching.
  const auto stream = std::make_shared<isa::Program>(workloads::StridedSweep(
      {.array_words = 8192, .stride_words = 8, .passes = 2, .dependent = true}));

  // --- axis 1: icache capacity ----------------------------------------
  const int kIcacheSets[] = {8, 32, 128, 512};  // x2 ways x16 B = 256 B..16 KiB.
  std::vector<runtime::SweepPoint> points;
  for (const auto kind : kCores) {
    for (const int sets : kIcacheSets) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config = BaseConfig();
      p.config.mem.hierarchy.l1i = Level(sets, 2, 16, 1, 12);
      p.program = footprint;
      p.workload = "footprint(3KiB)";
      points.push_back(std::move(p));
    }
  }

  // --- axis 2: L2 capacity --------------------------------------------
  const int kL2Sets[] = {32, 128, 512};  // x4 ways x32 B = 4 KiB..64 KiB.
  for (const auto kind : kCores) {
    for (const int sets : kL2Sets) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config = BaseConfig();
      p.config.mem.hierarchy.l1d = Level(16, 2, 32, 1, 4);  // 1 KiB.
      p.config.mem.hierarchy.l2 = Level(sets, 4, 32, 4, 24);
      p.program = stride;
      p.workload = "stride(16KiB)";
      points.push_back(std::move(p));
    }
  }

  // --- axis 3: prefetch depth on a starved backing tier ---------------
  const int kDepths[] = {0, 2, 4, 8};
  for (const auto kind : kCores) {
    for (const int depth : kDepths) {
      runtime::SweepPoint p;
      p.kind = kind;
      p.config = BaseConfig();
      p.config.mem.mode = memory::MemTimingMode::kBandwidthLimited;
      p.config.mem.regime = memory::BandwidthRegime::kConstant;
      p.config.mem.hierarchy.l1d = Level(16, 2, 32, 1, 12);  // 1 KiB.
      p.config.mem.hierarchy.prefetch.depth = depth;
      p.program = stream;
      p.workload = "stream(32KiB)";
      points.push_back(std::move(p));
    }
  }

  const runtime::SweepRunner runner({.num_threads = cli.threads});
  const auto outcomes = runtime::RunSweepCli(runner, cli, points).outcomes;
  for (const auto& o : outcomes) {
    Gate(o.ok, ("point failed: " + o.workload + ": " + o.error).c_str());
  }

  std::size_t next = 0;

  std::printf("--- IPC vs icache capacity (footprint ~3 KiB of code) ---\n");
  analysis::Table icache_table({"core", "256B", "1KiB", "4KiB", "16KiB",
                                "miss rate 256B", "miss rate 16KiB"});
  int icache_degraded = 0;
  for (const auto kind : kCores) {
    const std::size_t base = next;
    analysis::Table& row = icache_table.Row();
    row.Cell(std::string(core::ProcessorKindName(kind)));
    for (std::size_t i = 0; i < std::size(kIcacheSets); ++i) {
      row.Cell(outcomes[next++].result.Ipc(), 2);
    }
    const auto rate = [&](std::size_t i) {
      const auto& m = outcomes[base + i].result.stats.mem_hierarchy;
      const auto total = m.icache_hits + m.icache_misses;
      return total == 0 ? 0.0
                        : static_cast<double>(m.icache_misses) /
                              static_cast<double>(total);
    };
    row.Cell(rate(0), 3);
    row.Cell(rate(std::size(kIcacheSets) - 1), 3);
    for (std::size_t i = 1; i < std::size(kIcacheSets); ++i) {
      Gate(rate(i) <= rate(i - 1) + 1e-9,
           "icache miss rate must be non-increasing in capacity");
    }
    if (outcomes[base + std::size(kIcacheSets) - 1].result.Ipc() >
        1.02 * outcomes[base].result.Ipc()) {
      ++icache_degraded;
    }
  }
  std::printf("%s\n", icache_table.ToString().c_str());
  Gate(icache_degraded >= 2,
       "a too-small icache must cost IPC on at least two cores");

  std::printf("--- IPC vs L2 capacity (16 KiB strided walk, 1 KiB L1D) ---\n");
  analysis::Table l2_table({"core", "L2=4KiB", "L2=16KiB", "L2=64KiB",
                            "L2 miss rate 4KiB", "L2 miss rate 64KiB"});
  int l2_degraded = 0;
  for (const auto kind : kCores) {
    const std::size_t base = next;
    analysis::Table& row = l2_table.Row();
    row.Cell(std::string(core::ProcessorKindName(kind)));
    for (std::size_t i = 0; i < std::size(kL2Sets); ++i) {
      row.Cell(outcomes[next++].result.Ipc(), 2);
    }
    const auto rate = [&](std::size_t i) {
      const auto& m = outcomes[base + i].result.stats.mem_hierarchy;
      const auto total = m.l2_hits + m.l2_misses;
      return total == 0 ? 0.0
                        : static_cast<double>(m.l2_misses) /
                              static_cast<double>(total);
    };
    row.Cell(rate(0), 3);
    row.Cell(rate(std::size(kL2Sets) - 1), 3);
    // The CI monotonicity gate: on the stride kernel a larger L2 never
    // misses more.
    for (std::size_t i = 1; i < std::size(kL2Sets); ++i) {
      Gate(rate(i) <= rate(i - 1) + 1e-9,
           "L2 miss rate must be non-increasing in capacity (stride kernel)");
    }
    if (outcomes[base + std::size(kL2Sets) - 1].result.Ipc() >
        1.02 * outcomes[base].result.Ipc()) {
      ++l2_degraded;
    }
  }
  std::printf("%s\n", l2_table.ToString().c_str());
  Gate(l2_degraded >= 2,
       "a too-small L2 must cost IPC on at least two cores");

  std::printf(
      "--- IPC vs prefetch depth (32 KiB stream, M(n)=Theta(1) backing) "
      "---\n");
  analysis::Table pf_table({"core", "depth=0", "depth=2", "depth=4",
                            "depth=8", "useful prefetches (d=8)"});
  int recovered = 0;
  for (const auto kind : kCores) {
    const std::size_t base = next;
    analysis::Table& row = pf_table.Row();
    row.Cell(std::string(core::ProcessorKindName(kind)));
    for (std::size_t i = 0; i < std::size(kDepths); ++i) {
      row.Cell(outcomes[next++].result.Ipc(), 2);
    }
    row.Cell(static_cast<std::int64_t>(
        outcomes[base + std::size(kDepths) - 1]
            .result.stats.mem_hierarchy.prefetch_useful));
    if (outcomes[base + std::size(kDepths) - 1].result.Ipc() >
        1.02 * outcomes[base].result.Ipc()) {
      ++recovered;
    }
  }
  std::printf("%s\n", pf_table.ToString().c_str());
  Gate(recovered >= 2,
       "stride prefetching must recover IPC on at least two cores");

  // --- trace record -> replay byte-identity ---------------------------
  // The stride kernel, recorded and replayed through both codecs, must
  // produce byte-identical RunResults on cores with the hierarchy live.
  std::printf("--- trace record -> replay identity (stride kernel) ---\n");
  const auto trace = workloads::RecordTrace("stride(16KiB)", *stride);
  const auto from_text =
      workloads::DecodeTraceText(workloads::EncodeTraceText(trace));
  const auto from_binary =
      workloads::DecodeTraceBinary(workloads::EncodeTraceBinary(trace));
  core::CoreConfig replay_cfg = BaseConfig();
  replay_cfg.mem.hierarchy.l1d = Level(16, 2, 32, 1, 4);
  replay_cfg.mem.hierarchy.l2 = Level(128, 4, 32, 4, 24);
  replay_cfg.mem.hierarchy.prefetch.depth = 2;
  for (const auto kind :
       {core::ProcessorKind::kUltrascalarI, core::ProcessorKind::kHybrid}) {
    const auto run = [&](const isa::Program& program) {
      return EncodeResult(core::MakeProcessor(kind, replay_cfg)->Run(program));
    };
    const auto expected = run(*stride);
    const bool text_ok =
        run(workloads::TraceToProgram(from_text)) == expected;
    const bool binary_ok =
        run(workloads::TraceToProgram(from_binary)) == expected;
    Gate(text_ok, "text trace replay must be byte-identical");
    Gate(binary_ok, "binary trace replay must be byte-identical");
    std::printf("  %s: text %s, binary %s\n",
                std::string(core::ProcessorKindName(kind)).c_str(),
                text_ok ? "identical" : "DIVERGED",
                binary_ok ? "identical" : "DIVERGED");
  }

  if (!runtime::ExportOutcomes(cli, outcomes)) ++failures;
  std::printf("\n%s (%d gate failure%s)\n",
              failures == 0 ? "ALL GATES PASSED" : "GATES FAILED", failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
