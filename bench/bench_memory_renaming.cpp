// Ablation: memory renaming / store-to-load forwarding (Section 7).
//
// "The memory bandwidth pressure can also be reduced by using
// memory-renaming hardware, which can be implemented by CSPP circuits.
// With the right caching and renaming protocols, it is conceivable that a
// processor could require substantially reduced memory bandwidth, resulting
// in dramatically reduced chip complexity."
//
// We measure memory traffic and cycles with the feature off/on, then show
// the chip-complexity consequence: the bandwidth the chip must *provide*
// for the same performance shrinks, and with it the layout's wire delay.
#include <cstdio>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "vlsi/vlsi.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace ultra;
  std::printf("=== Ablation: store-to-load forwarding (memory renaming) ===\n\n");

  struct Workload {
    std::string name;
    isa::Program program;
  };
  const Workload suite[] = {
      {"memcpy(64)", workloads::MemCopy(64)},
      {"bubble(16)", workloads::BubbleSort(16)},
      {"indirect(32)", workloads::IndirectSum(32)},
      {"mix(l/s heavy)", workloads::RandomMix({.num_instructions = 400,
                                               .load_fraction = 0.3,
                                               .store_fraction = 0.3,
                                               .memory_words = 16,
                                               .seed = 5})},
  };

  std::printf(
      "--- UltrascalarI, oracle prediction, M(n) = Theta(1) admission ---\n");
  analysis::Table table({"workload", "loads->mem off", "loads->mem on",
                         "forwarded", "cycles off", "cycles on", "speedup"});
  for (const auto& w : suite) {
    core::CoreConfig cfg;
    cfg.window_size = 64;
    cfg.predictor = core::PredictorKind::kOracle;
    cfg.mem.mode = memory::MemTimingMode::kBandwidthLimited;
    cfg.mem.regime = memory::BandwidthRegime::kConstant;
    auto off = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg)
                   ->Run(w.program);
    cfg.store_forwarding = true;
    auto on = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg)
                  ->Run(w.program);
    table.Row()
        .Cell(w.name)
        .Cell(off.stats.load_count)
        .Cell(on.stats.load_count)
        .Cell(on.stats.forwarded_loads)
        .Cell(off.cycles)
        .Cell(on.cycles)
        .Cell(static_cast<double>(off.cycles) /
                  static_cast<double>(on.cycles),
              2);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("--- chip-complexity consequence (hybrid layout, L = 32) ---\n");
  std::printf(
      "If renaming removes enough traffic that M(n) = Theta(sqrt n) performs\n"
      "like Theta(n), the layout drops to the cheaper Figure 11 column:\n\n");
  analysis::Table cost({"n", "wire, M=Theta(n) [cm]",
                        "wire, M=Theta(sqrt n) [cm]", "saving"});
  for (int e = 10; e <= 18; e += 4) {
    const std::int64_t n = std::int64_t{1} << e;
    const vlsi::HybridLayout linear(
        32, 32,
        memory::BandwidthProfile::ForRegime(memory::BandwidthRegime::kLinear));
    const vlsi::HybridLayout sqrt_bw(
        32, 32,
        memory::BandwidthProfile::ForRegime(memory::BandwidthRegime::kSqrt));
    const double a = linear.At(n).wire_um / 1e4;
    const double b = sqrt_bw.At(n).wire_um / 1e4;
    cost.Row().Cell(n).Cell(a).Cell(b).Cell(a / b, 2);
  }
  std::printf("%s", cost.ToString().c_str());
  return 0;
}
