// E13 -- Window-size limit study (Section 1 context).
//
// The paper motivates scalability with limit studies: "Lam and Wilson
// suggest that ILP of ten to twenty is available with an infinite
// instruction window and good branch prediction [8]. ... Patt et al argue
// that a window size of 1000's is the best way to use large chips [14].
// The amount of parallelism available in a thousand-wide instruction window
// with realistic branch prediction ... is not well understood."
//
// With the scalable cores in hand we can run that study directly: IPC as a
// function of window size under oracle ("good") and BTFN ("realistic")
// prediction, on workloads of different inherent ILP. The (predictor x
// workload x window) grid is dispatched through the runtime::SweepRunner;
// results are aggregated in submission order, so the printed tables (and
// any --csv/--json export) are identical at every thread count.
//
// Usage: bench_window_ilp [--threads=N] [--csv=PATH] [--json=PATH]
//                         [--journal=PATH] [--resume]
//
// With --journal, each completed point is committed to a crash-safe journal
// and --resume skips the points already recorded — the exported CSV/JSON is
// byte-identical to an uninterrupted run (the CI kill-and-resume smoke job
// exercises exactly this path).
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "runtime/runtime.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace ultra;
  const auto cli = runtime::ParseSweepCli(argc, argv);
  std::printf("=== E13: IPC vs window size (limit study) ===\n\n");

  struct Workload {
    std::string name;
    std::shared_ptr<const isa::Program> program;
  };
  const Workload suite[] = {
      {"chains(ilp=32)",
       std::make_shared<isa::Program>(workloads::DependencyChains(
           {.num_instructions = 2048, .ilp = 30}))},
      {"fib(128)", std::make_shared<isa::Program>(workloads::Fibonacci(128))},
      {"dot(128)",
       std::make_shared<isa::Program>(workloads::DotProduct(128))},
      {"bubble(24)",
       std::make_shared<isa::Program>(workloads::BubbleSort(24))},
      {"mix(1024)", std::make_shared<isa::Program>(
                        workloads::RandomMix({.num_instructions = 1024}))},
  };
  const int windows[] = {8, 16, 32, 64, 128, 256};

  // One sweep over the full grid; the shared FunctionalSimCache means the
  // oracle's functional pre-run happens once per workload, not once per
  // (workload x window) point.
  std::vector<runtime::SweepPoint> points;
  for (const auto predictor :
       {core::PredictorKind::kOracle, core::PredictorKind::kBtfn}) {
    for (const auto& w : suite) {
      for (const int window : windows) {
        runtime::SweepPoint point;
        point.kind = core::ProcessorKind::kUltrascalarI;
        point.config.window_size = window;
        point.config.predictor = predictor;
        point.config.mem.mode = memory::MemTimingMode::kMagic;
        point.program = w.program;
        point.workload = w.name;
        points.push_back(std::move(point));
      }
    }
  }
  const runtime::SweepRunner runner({.num_threads = cli.threads});
  const auto outcomes = runtime::RunSweepCli(runner, cli, points).outcomes;

  std::size_t next = 0;
  for (const auto predictor :
       {core::PredictorKind::kOracle, core::PredictorKind::kBtfn}) {
    std::printf("--- %s prediction, UltrascalarI ---\n",
                predictor == core::PredictorKind::kOracle ? "oracle"
                                                          : "BTFN");
    analysis::Table table({"workload", "w=8", "w=16", "w=32", "w=64",
                           "w=128", "w=256"});
    for (const auto& w : suite) {
      analysis::Table& row = table.Row();
      row.Cell(w.name);
      for (std::size_t i = 0; i < std::size(windows); ++i) {
        row.Cell(outcomes[next++].result.Ipc(), 2);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "IPC saturates at each workload's dataflow limit once the window\n"
      "covers it; with realistic static prediction the branchy kernels\n"
      "plateau much earlier -- squashes keep the effective window small.\n"
      "This is the regime where the paper's scalable windows pay off only\n"
      "together with better prediction (its trace-cache citations).\n");
  return runtime::ExportOutcomes(cli, outcomes) ? 0 : 1;
}
