// E13 -- Window-size limit study (Section 1 context).
//
// The paper motivates scalability with limit studies: "Lam and Wilson
// suggest that ILP of ten to twenty is available with an infinite
// instruction window and good branch prediction [8]. ... Patt et al argue
// that a window size of 1000's is the best way to use large chips [14].
// The amount of parallelism available in a thousand-wide instruction window
// with realistic branch prediction ... is not well understood."
//
// With the scalable cores in hand we can run that study directly: IPC as a
// function of window size under oracle ("good") and BTFN ("realistic")
// prediction, on workloads of different inherent ILP.
#include <cstdio>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace ultra;
  std::printf("=== E13: IPC vs window size (limit study) ===\n\n");

  struct Workload {
    std::string name;
    isa::Program program;
  };
  const Workload suite[] = {
      {"chains(ilp=32)",
       workloads::DependencyChains({.num_instructions = 2048, .ilp = 30})},
      {"fib(128)", workloads::Fibonacci(128)},
      {"dot(128)", workloads::DotProduct(128)},
      {"bubble(24)", workloads::BubbleSort(24)},
      {"mix(1024)", workloads::RandomMix({.num_instructions = 1024})},
  };

  for (const auto predictor :
       {core::PredictorKind::kOracle, core::PredictorKind::kBtfn}) {
    std::printf("--- %s prediction, UltrascalarI ---\n",
                predictor == core::PredictorKind::kOracle ? "oracle"
                                                          : "BTFN");
    analysis::Table table({"workload", "w=8", "w=16", "w=32", "w=64",
                           "w=128", "w=256"});
    for (const auto& w : suite) {
      analysis::Table& row = table.Row();
      row.Cell(w.name);
      for (const int window : {8, 16, 32, 64, 128, 256}) {
        core::CoreConfig cfg;
        cfg.window_size = window;
        cfg.predictor = predictor;
        cfg.mem.mode = memory::MemTimingMode::kMagic;
        auto proc =
            core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
        row.Cell(proc->Run(w.program).Ipc(), 2);
      }
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "IPC saturates at each workload's dataflow limit once the window\n"
      "covers it; with realistic static prediction the branchy kernels\n"
      "plateau much earlier -- squashes keep the effective window small.\n"
      "This is the regime where the paper's scalable windows pay off only\n"
      "together with better prediction (its trace-cache citations).\n");
  return 0;
}
