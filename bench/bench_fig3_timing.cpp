// E1 -- Figure 3: the paper's eight-instruction timing diagram.
//
// Runs the Section 2 example on all four processor models and renders the
// execution timing. The paper's claim: the Ultrascalar datapath "exploits
// the same instruction-level parallelism as today's superscalars", i.e.
// every processor produces the Figure 3 schedule (div 10 cycles, mul 3,
// add 1), identical to the ideal out-of-order baseline.
#include <cstdio>
#include <string>

#include "analysis/analysis.hpp"
#include "core/core.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

core::CoreConfig Config() {
  core::CoreConfig cfg;
  cfg.window_size = 16;
  cfg.cluster_size = 8;
  cfg.predictor = core::PredictorKind::kBtfn;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== E1 / Figure 3: timing-diagram equivalence ===\n\n");
  std::printf(
      "Paper expectation (relative issue cycles): div@0 add@10 add@0 add@11\n"
      "mul@0 add@3 sub@0 add@1; all four processors must agree.\n\n");

  const auto program = workloads::Figure3Example();
  const auto cfg = Config();

  analysis::Table table({"processor", "cycles", "committed", "issue cycles",
                         "matches paper"});
  const std::vector<std::uint64_t> expected = {0, 10, 0, 11, 0, 3, 0, 1};

  for (const auto kind :
       {core::ProcessorKind::kIdeal, core::ProcessorKind::kUltrascalarI,
        core::ProcessorKind::kUltrascalarII, core::ProcessorKind::kHybrid}) {
    auto proc = core::MakeProcessor(kind, cfg);
    const auto result = proc->Run(program);

    std::string issues;
    bool matches = result.timeline.size() == 9;
    const std::uint64_t t0 =
        result.timeline.empty() ? 0 : result.timeline.front().issue_cycle;
    for (std::size_t k = 0; k + 1 < result.timeline.size(); ++k) {
      const std::uint64_t rel = result.timeline[k].issue_cycle - t0;
      issues += (k ? "," : "") + std::to_string(rel);
      if (k < expected.size() && rel != expected[k]) matches = false;
    }
    table.Row()
        .Cell(std::string(core::ProcessorKindName(kind)))
        .Cell(result.cycles)
        .Cell(result.committed)
        .Cell(issues)
        .Cell(matches ? "yes" : "NO");

    if (kind == core::ProcessorKind::kUltrascalarI) {
      std::printf("Ultrascalar I timing diagram (Figure 3 reproduction):\n");
      std::printf("%s\n",
                  analysis::RenderTimingDiagram(
                      {result.timeline.data(), result.timeline.size() - 1})
                      .c_str());
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
