// Ablation: shared ALUs (Section 7 + Ultrascalar Memo 2).
//
// "In the designs presented here, the ALU is replicated n times for an
// n-issue processor. In practice, ALUs can be effectively shared ...
// reducing the chip area further. ... We believe that in a 0.1 micrometer
// CMOS technology, a hybrid Ultrascalar with a window-size of 128 and 16
// shared ALUs (with floating-point) should fit easily within a chip 1 cm on
// a side."
//
// This bench measures (a) the IPC cost of sharing k ALUs on a 128-station
// hybrid across workloads, and (b) the area saved, reproducing the 1 cm
// back-of-the-envelope claim.
#include <cmath>
#include <cstdio>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "vlsi/vlsi.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace ultra;
  std::printf("=== Ablation: shared ALUs on a 128-station hybrid ===\n\n");

  struct Workload {
    std::string name;
    isa::Program program;
  };
  const Workload suite[] = {
      {"figure3", workloads::Figure3Example()},
      {"fib(32)", workloads::Fibonacci(32)},
      {"dot(48)", workloads::DotProduct(48)},
      {"chains(ilp=16)",
       workloads::DependencyChains({.num_instructions = 512, .ilp = 16})},
      {"mix(512)", workloads::RandomMix({.num_instructions = 512})},
  };

  std::printf("--- IPC vs shared-ALU count (window 128, clusters of 32) ---\n");
  analysis::Table table({"workload", "k=1", "k=2", "k=4", "k=8", "k=16",
                         "k=32", "unlimited"});
  for (const auto& w : suite) {
    analysis::Table& row = table.Row();
    row.Cell(w.name);
    for (const int k : {1, 2, 4, 8, 16, 32, 0}) {
      core::CoreConfig cfg;
      cfg.window_size = 128;
      cfg.cluster_size = 32;
      cfg.num_alus = k;
      cfg.mem.mode = memory::MemTimingMode::kMagic;
      auto proc = core::MakeProcessor(core::ProcessorKind::kHybrid, cfg);
      const auto result = proc->Run(w.program);
      row.Cell(result.Ipc(), 2);
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Separating window size from issue width (Section 1: "We know how to
  // separate the two parameters by issuing instructions to a smaller pool
  // of shared ALUs"): the window is n stations, the issue width is the k
  // shared ALUs.
  std::printf(
      "--- window size vs issue width (IPC, mix workload, hybrid) ---\n");
  {
    const auto program = workloads::RandomMix({.num_instructions = 512,
                                               .load_fraction = 0.1,
                                               .store_fraction = 0.05,
                                               .seed = 9});
    analysis::Table grid({"window", "k=2", "k=4", "k=8", "k=16"});
    for (const int window : {16, 32, 64, 128}) {
      analysis::Table& row = grid.Row();
      row.Cell(window);
      for (const int k : {2, 4, 8, 16}) {
        core::CoreConfig cfg;
        cfg.window_size = window;
        cfg.cluster_size = std::min(32, window);
        cfg.num_alus = k;
        cfg.mem.mode = memory::MemTimingMode::kMagic;
        auto proc = core::MakeProcessor(core::ProcessorKind::kHybrid, cfg);
        row.Cell(proc->Run(program).Ipc(), 2);
      }
    }
    std::printf("%s", grid.ToString().c_str());
    std::printf(
        "\n(A larger window keeps more distant ILP in flight for the same\n"
        "issue width -- the knob the paper says is \"doubtless worth\n"
        "investigating\".)\n\n");
  }

  // Back-of-the-envelope area: start from the calibrated Figure 12 hybrid
  // (128 stations, register datapath, 0.35 um), drop the per-station ALU
  // for all but k stations, and scale 0.35 um -> 0.1 um.
  const double alu_fraction = 0.4;  // ALU share of a station's area.
  const auto hybrid = vlsi::MagicHybridDatapath(128, 32);
  const double station_area_cm2 =
      std::pow(vlsi::kDefaultConstants.StationSideUm(32) / 1e4, 2.0);
  const double scale = std::pow(0.1 / 0.35, 2.0);
  std::printf("--- the paper's 1 cm chip (0.1 um, window 128, 16 ALUs) ---\n");
  analysis::Table area({"configuration", "area @0.35um [cm^2]",
                        "area @0.1um [cm^2]", "side @0.1um [cm]"});
  for (const int k : {128, 32, 16, 8}) {
    const double saved = (128 - k) * alu_fraction * station_area_cm2;
    const double a35 = hybrid.geom.area_cm2() - saved;
    const double a10 = a35 * scale;
    area.Row()
        .Cell(std::to_string(k) + " ALUs")
        .Cell(a35)
        .Cell(a10)
        .Cell(std::sqrt(a10));
  }
  std::printf("%s", area.ToString().c_str());
  std::printf(
      "\nAt 16 shared ALUs the 0.1 um hybrid needs a ~0.7 cm x 0.7 cm die --\n"
      "comfortably inside the paper's \"chip 1 cm on a side\", with room for\n"
      "the floating-point ALUs and memory datapath the estimate set aside.\n");
  return 0;
}
