// Ablation: pipelining the register datapath (Section 7).
//
// "For each of the three processors, it is possible to pipeline the system
// ... so that the long communications paths would include latches. ...
// Understanding the overall performance improvement of such schemes will
// require detailed performance simulations, since some operations, but not
// all, would then run much faster. A back-of-the-envelope calculation is
// promising however: Half of the communications paths from one station to
// its successor are completely local."
//
// This is that performance simulation. With a latch every s H-tree levels,
// a value crossing 2h levels takes ceil(2h/s) cycles, but the clock period
// shrinks from the whole-datapath delay to one stage. Programs whose
// instructions "depend on their immediate predecessors" keep most
// communication at 1 cycle and win; scattered dependence patterns pay the
// extra latency.
#include <cmath>
#include <cstdio>

#include "analysis/table.hpp"
#include "core/core.hpp"
#include "vlsi/vlsi.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

/// Stage clock: the full synchronous datapath delay divided across the
/// pipeline stages, plus a latch overhead per stage.
double StageClockPs(int window, int num_regs, int levels_per_stage) {
  const vlsi::UltrascalarILayout layout(
      num_regs,
      memory::BandwidthProfile::ForRegime(memory::BandwidthRegime::kConstant));
  const double wire_ps = 2.0 * layout.WireToLeafUm(window) / 1000.0 *
                         vlsi::kDefaultConstants.wire_ps_per_mm;
  const double gate_ps =
      vlsi::kDefaultConstants.gate_ps *
      vlsi::MeasureGateDelays(window, num_regs, num_regs).usi_tree;
  const double full = wire_ps + gate_ps;
  if (levels_per_stage <= 0) return full;
  int levels = 2;  // Up and down.
  for (int v = window; v > 1; v /= 4) levels += 2;
  const int stages = std::max(1, (levels + levels_per_stage - 1) /
                                     levels_per_stage);
  const double latch_ps = 60.0;
  return full / stages + latch_ps;
}

}  // namespace

int main() {
  std::printf("=== Ablation: pipelined Ultrascalar I datapath ===\n\n");
  const int window = 64;
  const int L = 32;

  struct Workload {
    std::string name;
    isa::Program program;
  };
  const Workload suite[] = {
      {"chains(ilp=1, local)",
       workloads::DependencyChains({.num_instructions = 192, .ilp = 1})},
      {"chains(ilp=16, scattered)",
       workloads::DependencyChains({.num_instructions = 384, .ilp = 16})},
      {"fib(32)", workloads::Fibonacci(32)},
      {"figure3", workloads::Figure3Example()},
      {"mix(256)", workloads::RandomMix({.num_instructions = 256})},
  };

  for (const auto& w : suite) {
    std::printf("--- %s ---\n", w.name.c_str());
    analysis::Table table({"latch every", "cycles", "clock [ps]",
                           "time [ns]", "speedup vs unpipelined"});
    double baseline_ns = 0.0;
    for (const int s : {0, 8, 4, 2}) {
      core::CoreConfig cfg;
      cfg.window_size = window;
      cfg.cluster_size = 16;
      cfg.mem.mode = memory::MemTimingMode::kMagic;
      cfg.pipeline_levels_per_stage = s;
      auto proc =
          core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
      const auto result = proc->Run(w.program);
      const double clock = StageClockPs(window, L, s);
      const double ns = static_cast<double>(result.cycles) * clock / 1000.0;
      if (s == 0) baseline_ns = ns;
      table.Row()
          .Cell(s == 0 ? std::string("(single cycle)")
                       : std::to_string(s) + " levels")
          .Cell(result.cycles)
          .Cell(clock, 0)
          .Cell(ns, 1)
          .Cell(baseline_ns / ns, 2);
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf(
      "Serial, neighbour-to-neighbour code pipelines almost for free (its\n"
      "values cross few latches) and gains nearly the full clock speedup;\n"
      "scattered dependence patterns pay multi-cycle forwarding and keep\n"
      "less of it -- exactly the paper's back-of-the-envelope intuition.\n"
      "(The committed register file is modelled as immediately visible; only\n"
      "in-flight station-to-station values pay the latch latency.)\n");
  return 0;
}
