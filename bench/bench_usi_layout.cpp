// E3 -- Ultrascalar I floorplan analysis (Section 3, Figure 6).
//
// Solves the paper's recurrences numerically:
//   X(n) = Theta(L) + Theta(M(n)) + 2 X(n/4)
//   W(n) = X(n/4) + Theta(L + M(n)) + W(n/2)
// across the three bandwidth regimes and reports side length, wire delay,
// and area, with fitted exponents against the paper's closed forms:
//   Case 1 (M = O(n^{1/2-e}))    : X = Theta(sqrt(n) L)
//   Case 2 (M = Theta(n^{1/2}))  : X = Theta(sqrt(n) (L + log n))
//   Case 3 (M = Omega(n^{1/2+e})): X = Theta(sqrt(n) L + M(n))
#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "vlsi/vlsi.hpp"

int main() {
  using namespace ultra;
  using memory::BandwidthProfile;
  using memory::BandwidthRegime;

  std::printf("=== E3: Ultrascalar I side length X(n) and wire delay ===\n\n");
  const int L = 32;

  struct Regime {
    BandwidthRegime regime;
    double scale;
    const char* closed_form;
    double expected_exp;
  };
  const Regime regimes[] = {
      {BandwidthRegime::kSqrtMinus, 1.0, "X = Theta(sqrt(n) L)", 0.5},
      {BandwidthRegime::kSqrt, 1.0, "X = Theta(sqrt(n)(L + log n))", 0.5},
      {BandwidthRegime::kSqrtPlus, 60.0, "X = Theta(sqrt(n) L + M(n))",
       0.75},
      {BandwidthRegime::kLinear, 1.0, "X = Theta(n) (full bandwidth)", 1.0},
  };

  for (const auto& r : regimes) {
    const auto profile = BandwidthProfile::ForRegime(r.regime, r.scale);
    const vlsi::UltrascalarILayout layout(L, profile);
    std::printf("--- %s, paper: %s ---\n", profile.name().c_str(),
                r.closed_form);
    analysis::Table table(
        {"n", "X(n) [cm]", "2W(n) wire [cm]", "area [cm^2]"});
    std::vector<double> ns, sides;
    for (int e = 6; e <= 20; e += 2) {
      const std::int64_t n = std::int64_t{1} << e;
      const auto g = layout.At(n);
      table.Row().Cell(n).Cell(g.side_cm()).Cell(g.wire_um / 1e4).Cell(
          g.area_cm2());
      ns.push_back(static_cast<double>(n));
      sides.push_back(g.side_um);
    }
    std::printf("%s", table.ToString().c_str());
    const auto fit = vlsi::FitPowerLaw(ns, sides);
    std::printf("  fitted side exponent: %.3f (paper: %.2f), R^2 = %.4f\n\n",
                fit.exponent, r.expected_exp, fit.r_squared);
  }

  std::printf(
      "Wire length == side length to within a constant (Section 3:\n"
      "\"W(n) = Theta(X(n))\"):\n");
  const vlsi::UltrascalarILayout layout(
      L, BandwidthProfile::ForRegime(BandwidthRegime::kSqrtMinus));
  analysis::Table ratio({"n", "2W(n)/X(n)"});
  for (int e = 6; e <= 20; e += 2) {
    const std::int64_t n = std::int64_t{1} << e;
    const auto g = layout.At(n);
    ratio.Row().Cell(n).Cell(g.wire_um / g.side_um);
  }
  std::printf("%s", ratio.ToString().c_str());
  return 0;
}
