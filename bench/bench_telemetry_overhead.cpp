// Telemetry overhead gate (engineering, not a paper figure).
//
// Measures simulator throughput (cycles/sec) of the Ultrascalar I core in
// four telemetry states:
//
//   baseline  CoreConfig::telemetry == nullptr (hooks compile to a dead
//             null test; the pre-telemetry configuration)
//   disabled  a RunTelemetry attached with metrics_enabled == false and no
//             tracer -- the state every instrumented-but-off consumer pays
//   metrics   metrics enabled (occupancy gauge + two histograms per cycle)
//   full      metrics plus a 64Ki-event pipeline trace ring
//
// The gate: "disabled" must stay within --tolerance (default 2%) of
// "baseline" cycles/sec -- judged on the best per-pass paired ratio so
// machine-wide drift cancels -- and enforced by exit code so CI fails
// when someone puts real work on the disabled path. "metrics"/"full" are
// reported for context but not gated -- enabling instrumentation is
// allowed to cost.
//
// Usage: bench_telemetry_overhead [--quick] [--json=PATH] [--tolerance=F]
//   --quick        shorter workload and measurement windows (CI smoke run)
//   --json         output path (default BENCH_telemetry_overhead.json)
//   --tolerance    allowed fractional slowdown for "disabled" (default 0.02)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

struct Options {
  bool quick = false;
  std::string json_path = "BENCH_telemetry_overhead.json";
  double tolerance = 0.02;
};

Options ParseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(std::strlen("--json="));
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      opt.tolerance = std::atof(arg.c_str() + std::strlen("--tolerance="));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  return opt;
}

struct Mode {
  const char* name;
  bool attach = false;   // Hand a RunTelemetry to the core at all.
  bool metrics = false;  // metrics_enabled.
  bool trace = false;    // Attach a 64Ki-event ring.
};

struct Measurement {
  double cycles_per_sec = 0.0;
  std::uint64_t cycles_per_run = 0;
  int runs = 0;
};

/// One measurement pass: repeat Run() until ~target_seconds of wall time
/// has accumulated, then report aggregate cycles/sec. The telemetry sink
/// and ring are constructed once per pass (matching how a sweep reuses its
/// per-point sink), so only the steady-state hook cost is on the clock.
Measurement MeasureOnce(const core::CoreConfig& base,
                        const isa::Program& program, const Mode& mode,
                        double target_seconds) {
  telemetry::PipelineTracer tracer({.capacity = std::size_t{1} << 16});
  telemetry::RunTelemetry telem;
  telem.metrics_enabled = mode.metrics;
  if (mode.trace) telem.tracer = &tracer;

  core::CoreConfig cfg = base;
  cfg.telemetry = mode.attach ? &telem : nullptr;

  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t total_cycles = 0;
  double elapsed = 0.0;
  do {
    auto proc = core::MakeProcessor(core::ProcessorKind::kUltrascalarI, cfg);
    const auto result = proc->Run(program);
    m.cycles_per_run = result.cycles;
    total_cycles += result.cycles;
    ++m.runs;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < target_seconds);
  m.cycles_per_sec =
      elapsed > 0.0 ? static_cast<double>(total_cycles) / elapsed : 0.0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = ParseArgs(argc, argv);
  const double target_s = opt.quick ? 0.15 : 0.3;
  const int passes = 5;  // Best-of to shrug off scheduler noise.

  const isa::Program program = workloads::DependencyChains(
      {.num_instructions = opt.quick ? 2048 : 8192, .ilp = 4});

  core::CoreConfig base;
  base.window_size = 256;
  base.num_regs = 32;
  base.mem.mode = memory::MemTimingMode::kMagic;

  const Mode modes[] = {
      {.name = "baseline"},
      {.name = "disabled", .attach = true},
      {.name = "metrics", .attach = true, .metrics = true},
      {.name = "full", .attach = true, .metrics = true, .trace = true},
  };

  std::printf("=== Telemetry overhead (UltrascalarI n=%d L=%d, %s) ===\n",
              base.window_size, base.num_regs,
              opt.quick ? "quick" : "full");
  // Warm-up round (discarded): lets the CPU reach its steady clock and
  // faults in code/data before anything lands on the record. Without it
  // the first measured mode -- always "baseline" -- gets a different
  // machine than the rest and the gate ratio drifts by several percent.
  for (const Mode& mode : modes) {
    (void)MeasureOnce(base, program, mode, target_s / 3.0);
  }

  // Each pass measures every mode back-to-back and the gate uses the
  // *paired* ratio (mode vs the same pass's baseline), taking the best
  // pass. Pairing cancels slow machine-wide drift (frequency scaling,
  // co-tenant load) that a best-of over independent measurements cannot:
  // one lucky baseline pass would otherwise sink the ratio. A genuine
  // systematic slowdown still fails -- no pass can reach the bar.
  std::vector<Measurement> best(std::size(modes));
  std::vector<double> best_ratio(std::size(modes), 0.0);
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<Measurement> now(std::size(modes));
    for (std::size_t i = 0; i < std::size(modes); ++i) {
      now[i] = MeasureOnce(base, program, modes[i], target_s);
      if (now[i].cycles_per_sec > best[i].cycles_per_sec) best[i] = now[i];
    }
    if (now[0].cycles_per_sec <= 0.0) continue;
    for (std::size_t i = 0; i < std::size(modes); ++i) {
      const double r = now[i].cycles_per_sec / now[0].cycles_per_sec;
      if (r > best_ratio[i]) best_ratio[i] = r;
    }
  }

  const double baseline = best[0].cycles_per_sec;
  std::printf("%-10s %14s %10s %12s %8s\n", "mode", "cycles/s", "vs base",
              "paired best", "runs");
  for (std::size_t i = 0; i < std::size(modes); ++i) {
    const double ratio =
        baseline > 0.0 ? best[i].cycles_per_sec / baseline : 0.0;
    std::printf("%-10s %14.0f %9.2f%% %11.2f%% %8d\n", modes[i].name,
                best[i].cycles_per_sec, (ratio - 1.0) * 100.0,
                (best_ratio[i] - 1.0) * 100.0, best[i].runs);
  }

  const double disabled_ratio = best_ratio[1];
  const bool ok = disabled_ratio >= 1.0 - opt.tolerance;
  std::printf("\ngate: disabled >= %.1f%% of baseline: %s (%.2f%%)\n",
              (1.0 - opt.tolerance) * 100.0, ok ? "PASS" : "FAIL",
              disabled_ratio * 100.0);

  std::ofstream out(opt.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
    return 1;
  }
  out << "{\n  \"mode\": \"" << (opt.quick ? "quick" : "full")
      << "\",\n  \"core\": \"usi\", \"window\": " << base.window_size
      << ", \"num_regs\": " << base.num_regs
      << ",\n  \"tolerance\": " << opt.tolerance
      << ", \"gate_passed\": " << (ok ? "true" : "false")
      << ",\n  \"modes\": [\n";
  for (std::size_t i = 0; i < std::size(modes); ++i) {
    const double ratio =
        baseline > 0.0 ? best[i].cycles_per_sec / baseline : 0.0;
    out << "    {\"name\": \"" << modes[i].name
        << "\", \"cycles_per_sec\": " << best[i].cycles_per_sec
        << ", \"cycles_per_run\": " << best[i].cycles_per_run
        << ", \"runs\": " << best[i].runs
        << ", \"ratio_vs_baseline\": " << ratio
        << ", \"paired_best_ratio\": " << best_ratio[i] << "}"
        << (i + 1 < std::size(modes) ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote %s\n", opt.json_path.c_str());
  return ok ? 0 : 1;
}
