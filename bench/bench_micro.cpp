// E11 -- Simulator micro-benchmarks (google-benchmark).
//
// Engineering numbers for the reproduction itself: how fast the prefix
// circuits evaluate, how fast the datapaths propagate, and how many
// simulated cycles per second the full cores run.
#include <benchmark/benchmark.h>

#include <random>

#include "circuit/circuit.hpp"
#include "core/core.hpp"
#include "datapath/datapath.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace ultra;

void BM_CsppValues(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<int> inputs(n);
  std::vector<std::uint8_t> segs(n, 0);
  std::mt19937 rng(7);
  for (auto& v : inputs) v = static_cast<int>(rng());
  for (auto& s : segs) s = (rng() % 8) == 0;
  segs[0] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit::CsppValues<int, circuit::PassFirstOp>(inputs, segs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CsppValues)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CsppTreeDepthTracked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<circuit::Signal<int>> inputs(n);
  std::vector<circuit::Signal<bool>> segs(n);
  segs[0] = {true, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit::CsppTreeEvaluate<int, circuit::PassFirstOp>(inputs, segs));
  }
}
BENCHMARK(BM_CsppTreeDepthTracked)->Arg(64)->Arg(1024)->Arg(16384);

void BM_UsiPropagate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int L = 32;
  const datapath::UltrascalarIDatapath dp(n, L);
  std::vector<datapath::RegBinding> outgoing(
      static_cast<std::size_t>(n) * L);
  std::vector<std::uint8_t> modified(static_cast<std::size_t>(n) * L, 0);
  std::mt19937 rng(11);
  for (int i = 0; i < n; ++i) {
    modified[static_cast<std::size_t>(i) * L + rng() % L] = 1;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.Propagate(outgoing, modified, 0));
  }
}
BENCHMARK(BM_UsiPropagate)->Arg(16)->Arg(64)->Arg(256);

void BM_UsiiPropagate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int L = 32;
  const datapath::UltrascalarIIDatapath dp(n, L);
  std::vector<datapath::RegBinding> regfile(static_cast<std::size_t>(L));
  std::vector<datapath::StationRequest> reqs(static_cast<std::size_t>(n));
  std::mt19937 rng(13);
  for (auto& r : reqs) {
    r.reads1 = true;
    r.arg1 = static_cast<isa::RegId>(rng() % L);
    r.reads2 = true;
    r.arg2 = static_cast<isa::RegId>(rng() % L);
    r.writes = true;
    r.dest = static_cast<isa::RegId>(rng() % L);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.Propagate(regfile, reqs));
  }
}
BENCHMARK(BM_UsiiPropagate)->Arg(16)->Arg(64)->Arg(256);

void RunCore(benchmark::State& state, core::ProcessorKind kind) {
  core::CoreConfig cfg;
  cfg.window_size = 32;
  cfg.cluster_size = 8;
  cfg.mem.mode = memory::MemTimingMode::kMagic;
  const auto program = workloads::Fibonacci(64);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    auto proc = core::MakeProcessor(kind, cfg);
    const auto result = proc->Run(program);
    cycles += result.cycles;
    benchmark::DoNotOptimize(result.committed);
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_IdealCore(benchmark::State& state) {
  RunCore(state, core::ProcessorKind::kIdeal);
}
void BM_UltrascalarICore(benchmark::State& state) {
  RunCore(state, core::ProcessorKind::kUltrascalarI);
}
void BM_UltrascalarIICore(benchmark::State& state) {
  RunCore(state, core::ProcessorKind::kUltrascalarII);
}
void BM_HybridCore(benchmark::State& state) {
  RunCore(state, core::ProcessorKind::kHybrid);
}
BENCHMARK(BM_IdealCore);
BENCHMARK(BM_UltrascalarICore);
BENCHMARK(BM_UltrascalarIICore);
BENCHMARK(BM_HybridCore);

}  // namespace

BENCHMARK_MAIN();
