#!/usr/bin/env bash
# Crash-point chaos smoke (docs/robustness.md, tests/chaos_test.cpp):
#
# tests/chaos_test.cpp enumerates *every* crash point in-process with the
# silent crash mode; this script drives the same enumeration against real
# sweepctl subprocesses with CRASH_MODE=exit -- _exit(137) in the middle of
# the faulted syscall, the literal "power cut" no in-process simulation can
# fake -- plus a plain kill -9 for crash points past the sampled window:
#
#   1. run the reference sweep locally (no daemon);
#   2. counting run: a full daemon submit/drain cycle under
#      ULTRA_FAILPOINT_COUNT + ULTRA_FAILPOINT_REPORT to learn N, the
#      number of durability-relevant I/O ops in the cycle;
#   3. for a bounded sample of crash points k spread over 1..N (CI budget:
#      the full sweep lives in chaos_test.cpp), start a fresh daemon with
#      ULTRA_FAILPOINT_CRASH_AT_OP=k, CRASH_MODE=exit, submit detached --
#      the daemon dies at op k, mid-write, mid-fsync, mid-rename, or
#      mid-send, wherever k lands. If k lands beyond the ops the cycle
#      reached before the client finished, kill -9 the daemon instead so
#      every iteration still crashes;
#   4. restart on the same state dir with failpoints off: the journal must
#      self-heal, the lock must be free, stale .tmp files must be swept,
#      and the recovered (or resubmitted) export must be byte-identical to
#      the uninterrupted reference;
#   5. on any violation, preserve the wreckage as a repro bundle and fail.
#
# Usage: scripts/chaos_smoke.sh [path-to-sweepctl]
#   CHAOS_POINTS=M   number of crash points to sample (default 8)
#   CHAOS_REPRO=DIR  where to leave the repro bundle on failure
#                    (default ./chaos-repro)
# Exits nonzero on any violation; prints CHAOS_SMOKE_PASS on success.
set -euo pipefail

SWEEPCTL=${1:-./build/examples/sweepctl}
CHAOS_POINTS=${CHAOS_POINTS:-8}
CHAOS_REPRO=${CHAOS_REPRO:-./chaos-repro}
# Unix socket paths are length-limited (~108 bytes): stay under /tmp.
WORK=$(mktemp -d /tmp/sweepd-chaos.XXXXXX)
SOCK="$WORK/s.sock"
# Small but multi-point: enough journal/export traffic to be interesting,
# small enough that ~10 full crash/recover cycles stay in the CI budget.
SPEC=(--workload=fib:10 --kinds=UltrascalarI --windows=8,16)

SERVER_PID=
CURRENT_K=
cleanup() {
  if [[ -n "$SERVER_PID" ]]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
fail() {
  echo "chaos_smoke: $1" >&2
  # Repro bundle: the frozen state dir, every log, and the knob values
  # needed to replay this exact crash point by hand.
  rm -rf "$CHAOS_REPRO"
  mkdir -p "$CHAOS_REPRO"
  cp -r "$WORK"/. "$CHAOS_REPRO"/ 2>/dev/null || true
  {
    echo "failure: $1"
    echo "crash_point_k: ${CURRENT_K:-none}"
    echo "replay: ULTRA_FAILPOINT_CRASH_AT_OP=\$k ULTRA_FAILPOINT_CRASH_MODE=exit \\"
    echo "        $SWEEPCTL serve --socket=... --state-dir=... ${SPEC[*]}"
  } >"$CHAOS_REPRO/REPRO.txt"
  echo "chaos_smoke: repro bundle left in $CHAOS_REPRO" >&2
  exit 1
}
trap cleanup EXIT

start_daemon() {  # start_daemon <state-dir> <log> [env VAR=VAL ...]
  local state=$1 log=$2
  shift 2
  env "$@" "$SWEEPCTL" serve --socket="$SOCK" --state-dir="$state" \
    --threads=1 >"$log" 2>&1 &
  SERVER_PID=$!
}

wait_ready() {  # wait_ready -> 0 ready, 1 daemon exited first
  for _ in $(seq 1 100); do
    if "$SWEEPCTL" status --socket="$SOCK" --timeout=2 >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

stop_daemon_hard() {
  if [[ -n "$SERVER_PID" ]]; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=
  fi
  rm -f "$SOCK"
}

echo "== reference run (no daemon) =="
"$SWEEPCTL" run "${SPEC[@]}" --threads=1 --csv-out="$WORK/reference.csv"

echo "== counting run: learn N over a full submit/drain daemon cycle =="
start_daemon "$WORK/count-state" "$WORK/serve-count.log" \
  ULTRA_FAILPOINT_COUNT=1 ULTRA_FAILPOINT_REPORT="$WORK/ops.txt"
wait_ready || fail "counting daemon never became ready"
"$SWEEPCTL" submit --socket="$SOCK" "${SPEC[@]}" --detach --csv=chaos.csv \
  --wait --timeout=30 >"$WORK/count-submit.log" 2>&1 \
  || fail "counting-run submit failed"
"$SWEEPCTL" shutdown --socket="$SOCK" --timeout=10
wait "$SERVER_PID" || fail "counting daemon exited nonzero on drain"
SERVER_PID=
rm -f "$SOCK"
N=$(awk '/^ops /{print $2}' "$WORK/ops.txt")
[[ -n "$N" && "$N" -gt 0 ]] || fail "no op count in failpoint report"
cmp -s "$WORK/reference.csv" "$WORK/count-state/chaos.csv" \
  || fail "counting-run export differs from local reference"
echo "daemon cycle performs N=$N seam ops; sampling $CHAOS_POINTS crash points"

# Evenly spread sample of 1..N. chaos_test.cpp covers every k; here the
# budget buys breadth across real process boundaries instead.
STEP=$(( (N + CHAOS_POINTS - 1) / CHAOS_POINTS ))
[[ "$STEP" -ge 1 ]] || STEP=1

for K in $(seq 1 "$STEP" "$N"); do
  CURRENT_K=$K
  STATE="$WORK/state-k$K"
  echo "== crash point k=$K of $N =="
  start_daemon "$STATE" "$WORK/serve-k$K.log" \
    ULTRA_FAILPOINT_CRASH_AT_OP="$K" ULTRA_FAILPOINT_CRASH_MODE=exit
  ID=
  if wait_ready; then
    # The daemon may die under this client mid-frame: a short --timeout
    # turns "hang on a dead daemon" into a clean client error.
    SUBMIT_OUT=$("$SWEEPCTL" submit --socket="$SOCK" "${SPEC[@]}" --detach \
      --csv=chaos.csv --wait --timeout=5 2>&1) || true
    ID=$(sed -n 's/.*id=\([0-9][0-9]*\).*/\1/p' <<<"$SUBMIT_OUT" | head -1)
  fi
  # If op k lies beyond what the cycle reached (client finished first, or
  # the daemon never came up far enough to serve it), deliver the crash the
  # old-fashioned way so every iteration exercises recovery after death.
  if kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=
  rm -f "$SOCK"

  # Recovery: a clean daemon on the wreckage. Start succeeding proves the
  # crashed daemon's state-dir lock died with it and the journal healed.
  start_daemon "$STATE" "$WORK/recover-k$K.log"
  wait_ready || fail "k=$K: restart on crashed state dir failed"
  "$SWEEPCTL" status --socket="$SOCK" --timeout=5 >"$WORK/status-k$K.txt"
  if ! grep -Eq '^service\.recovered [1-9]' "$WORK/status-k$K.txt" \
      && ! cmp -s "$WORK/reference.csv" "$STATE/chaos.csv"; then
    # Crash predates durable admission: no ack, no promise -- resubmit.
    SUBMIT_OUT=$("$SWEEPCTL" submit --socket="$SOCK" "${SPEC[@]}" --detach \
      --csv=chaos.csv --timeout=10) \
      || fail "k=$K: resubmit after recovery failed"
    ID=$(sed -n 's/.*id=\([0-9][0-9]*\).*/\1/p' <<<"$SUBMIT_OUT" | head -1)
  fi
  # Converge on the export; detached work finishes on daemon time.
  for _ in $(seq 1 200); do
    cmp -s "$WORK/reference.csv" "$STATE/chaos.csv" && break
    sleep 0.1
  done
  cmp -s "$WORK/reference.csv" "$STATE/chaos.csv" \
    || fail "k=$K: recovered export differs from reference (request ${ID:-?})"
  if ls "$STATE"/*.tmp.* >/dev/null 2>&1; then
    fail "k=$K: orphaned .tmp files survived recovery"
  fi
  "$SWEEPCTL" shutdown --socket="$SOCK" --timeout=10
  # Nonzero here is real (e.g. an ASan report on the recovery path).
  wait "$SERVER_PID" || fail "k=$K: recovery daemon exited nonzero on drain"
  SERVER_PID=
  rm -f "$SOCK"
done
CURRENT_K=

echo "CHAOS_SMOKE_PASS"
