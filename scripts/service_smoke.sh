#!/usr/bin/env bash
# Service crash-restart smoke (docs/service.md, tests/service_test.cpp):
#
#   1. run the reference sweep locally (`sweepctl run`, no daemon);
#   2. start the daemon, hit it with concurrent clients, and submit the
#      same sweep detached with a CSV export;
#   3. SIGKILL the daemon mid-sweep -- the literal crash the in-process
#      gtest can only simulate;
#   4. restart on the same state dir, let journal recovery resume the
#      request, and require the recovered export to be byte-identical to
#      the uninterrupted local run (three ways: on-disk export, the bytes
#      returned over the wire, and the local reference);
#   5. drain-shutdown cleanly.
#
# Usage: scripts/service_smoke.sh [path-to-sweepctl]
# Exits nonzero on any violation; prints SERVICE_SMOKE_PASS on success.
set -euo pipefail

SWEEPCTL=${1:-./build/examples/sweepctl}
# Unix socket paths are length-limited (~108 bytes): stay under /tmp.
WORK=$(mktemp -d /tmp/sweepd-smoke.XXXXXX)
SOCK="$WORK/s.sock"
STATE="$WORK/state"
# The spec submitted to the daemon AND run locally -- BuildPoints in
# sweepctl is shared by both paths, so the point lists are identical.
SPEC=(--workload=sort:120
      --kinds=Ideal,UltrascalarI,UltrascalarII,Hybrid
      --windows=8,16,32,64)

SERVER_PID=
cleanup() {
  if [[ -n "$SERVER_PID" ]]; then kill -9 "$SERVER_PID" 2>/dev/null || true; fi
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 1 100); do
    if "$SWEEPCTL" status --socket="$SOCK" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "service_smoke: daemon never became ready" >&2
  cat "$WORK"/serve*.log >&2 || true
  return 1
}

echo "== reference run (no daemon) =="
"$SWEEPCTL" run "${SPEC[@]}" --threads=4 --csv-out="$WORK/reference.csv"

echo "== start daemon =="
"$SWEEPCTL" serve --socket="$SOCK" --state-dir="$STATE" --threads=2 \
  >"$WORK/serve1.log" 2>&1 &
SERVER_PID=$!
wait_ready

echo "== concurrent clients + the crash-target submission =="
# Two interactive clients ride along; the daemon dying under them must
# only fail *them*, never wedge the smoke.
"$SWEEPCTL" submit --socket="$SOCK" --workload=fib:12 --windows=8 --wait \
  >"$WORK/client-a.log" 2>&1 || true &
CLIENT_A=$!
"$SWEEPCTL" submit --socket="$SOCK" --workload=figure3 --kinds=Hybrid --wait \
  >"$WORK/client-b.log" 2>&1 || true &
CLIENT_B=$!
SUBMIT_OUT=$("$SWEEPCTL" submit --socket="$SOCK" "${SPEC[@]}" \
  --detach --csv=smoke.csv)
echo "$SUBMIT_OUT"
ID=$(sed -n 's/.*id=\([0-9][0-9]*\).*/\1/p' <<<"$SUBMIT_OUT")
if [[ -z "$ID" ]]; then
  echo "service_smoke: no request id in submit reply" >&2
  exit 1
fi

sleep 0.7
echo "== SIGKILL the daemon mid-sweep =="
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
wait "$CLIENT_A" 2>/dev/null || true
wait "$CLIENT_B" 2>/dev/null || true

echo "== restart on the same state dir =="
"$SWEEPCTL" serve --socket="$SOCK" --state-dir="$STATE" --threads=2 \
  >"$WORK/serve2.log" 2>&1 &
SERVER_PID=$!
wait_ready
"$SWEEPCTL" status --socket="$SOCK" >"$WORK/status.txt"
grep '^service\.' "$WORK/status.txt" || true
if grep -Eq '^service\.recovered [1-9]' "$WORK/status.txt"; then
  echo "genuine mid-sweep crash: journal recovery re-queued request $ID"
else
  echo "WARNING: the sweep finished before the kill landed, so recovery was"
  echo "         vacuous this run; byte-identity is still asserted below"
fi

echo "== wait for the recovered request, compare exports three ways =="
"$SWEEPCTL" wait --socket="$SOCK" --id="$ID" --csv-out="$WORK/recovered.csv"
cmp "$WORK/reference.csv" "$STATE/smoke.csv"
cmp "$WORK/reference.csv" "$WORK/recovered.csv"
echo "export after kill -9 + restart is byte-identical to the uninterrupted run"

echo "== graceful drain shutdown =="
"$SWEEPCTL" shutdown --socket="$SOCK"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "service_smoke: daemon failed to drain after shutdown" >&2
  exit 1
fi
# A nonzero exit here is a real failure (e.g. an ASan leak report on the
# recovery path) -- the SIGKILL'd first daemon is the only expected casualty.
if ! wait "$SERVER_PID"; then
  echo "service_smoke: daemon exited nonzero after drain shutdown" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
fi
SERVER_PID=

echo "SERVICE_SMOKE_PASS"
