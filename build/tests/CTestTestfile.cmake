# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/vlsi_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/datapath_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_extra_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/butterfly_test[1]_include.cmake")
