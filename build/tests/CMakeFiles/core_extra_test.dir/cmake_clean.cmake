file(REMOVE_RECURSE
  "CMakeFiles/core_extra_test.dir/core_extra_test.cpp.o"
  "CMakeFiles/core_extra_test.dir/core_extra_test.cpp.o.d"
  "core_extra_test"
  "core_extra_test.pdb"
  "core_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
