# Empty compiler generated dependencies file for vlsi_test.
# This may be replaced when dependencies are built.
