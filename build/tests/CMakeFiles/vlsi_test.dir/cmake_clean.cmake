file(REMOVE_RECURSE
  "CMakeFiles/vlsi_test.dir/vlsi_test.cpp.o"
  "CMakeFiles/vlsi_test.dir/vlsi_test.cpp.o.d"
  "vlsi_test"
  "vlsi_test.pdb"
  "vlsi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlsi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
