file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_delay.dir/bench_gate_delay.cpp.o"
  "CMakeFiles/bench_gate_delay.dir/bench_gate_delay.cpp.o.d"
  "bench_gate_delay"
  "bench_gate_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
