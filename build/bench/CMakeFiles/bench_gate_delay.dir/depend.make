# Empty dependencies file for bench_gate_delay.
# This may be replaced when dependencies are built.
