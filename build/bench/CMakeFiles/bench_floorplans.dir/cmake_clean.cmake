file(REMOVE_RECURSE
  "CMakeFiles/bench_floorplans.dir/bench_floorplans.cpp.o"
  "CMakeFiles/bench_floorplans.dir/bench_floorplans.cpp.o.d"
  "bench_floorplans"
  "bench_floorplans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floorplans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
