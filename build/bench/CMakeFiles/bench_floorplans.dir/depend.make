# Empty dependencies file for bench_floorplans.
# This may be replaced when dependencies are built.
