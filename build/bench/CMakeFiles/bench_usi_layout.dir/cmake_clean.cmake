file(REMOVE_RECURSE
  "CMakeFiles/bench_usi_layout.dir/bench_usi_layout.cpp.o"
  "CMakeFiles/bench_usi_layout.dir/bench_usi_layout.cpp.o.d"
  "bench_usi_layout"
  "bench_usi_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usi_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
