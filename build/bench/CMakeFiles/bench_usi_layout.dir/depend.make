# Empty dependencies file for bench_usi_layout.
# This may be replaced when dependencies are built.
