file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_renaming.dir/bench_memory_renaming.cpp.o"
  "CMakeFiles/bench_memory_renaming.dir/bench_memory_renaming.cpp.o.d"
  "bench_memory_renaming"
  "bench_memory_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
