
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_empirical.cpp" "bench/CMakeFiles/bench_fig12_empirical.dir/bench_fig12_empirical.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_empirical.dir/bench_fig12_empirical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ultra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/datapath/CMakeFiles/ultra_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ultra_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ultra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vlsi/CMakeFiles/ultra_vlsi.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ultra_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ultra_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
