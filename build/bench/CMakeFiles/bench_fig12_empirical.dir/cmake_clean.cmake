file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_empirical.dir/bench_fig12_empirical.cpp.o"
  "CMakeFiles/bench_fig12_empirical.dir/bench_fig12_empirical.cpp.o.d"
  "bench_fig12_empirical"
  "bench_fig12_empirical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
