file(REMOVE_RECURSE
  "CMakeFiles/bench_3d_scaling.dir/bench_3d_scaling.cpp.o"
  "CMakeFiles/bench_3d_scaling.dir/bench_3d_scaling.cpp.o.d"
  "bench_3d_scaling"
  "bench_3d_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_3d_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
