file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_bandwidth.dir/bench_memory_bandwidth.cpp.o"
  "CMakeFiles/bench_memory_bandwidth.dir/bench_memory_bandwidth.cpp.o.d"
  "bench_memory_bandwidth"
  "bench_memory_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
