file(REMOVE_RECURSE
  "CMakeFiles/bench_window_ilp.dir/bench_window_ilp.cpp.o"
  "CMakeFiles/bench_window_ilp.dir/bench_window_ilp.cpp.o.d"
  "bench_window_ilp"
  "bench_window_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
