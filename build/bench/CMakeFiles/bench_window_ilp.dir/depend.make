# Empty dependencies file for bench_window_ilp.
# This may be replaced when dependencies are built.
