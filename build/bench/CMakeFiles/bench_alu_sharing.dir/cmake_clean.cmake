file(REMOVE_RECURSE
  "CMakeFiles/bench_alu_sharing.dir/bench_alu_sharing.cpp.o"
  "CMakeFiles/bench_alu_sharing.dir/bench_alu_sharing.cpp.o.d"
  "bench_alu_sharing"
  "bench_alu_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alu_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
