# Empty dependencies file for bench_alu_sharing.
# This may be replaced when dependencies are built.
