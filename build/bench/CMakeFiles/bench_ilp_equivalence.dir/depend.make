# Empty dependencies file for bench_ilp_equivalence.
# This may be replaced when dependencies are built.
