file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_equivalence.dir/bench_ilp_equivalence.cpp.o"
  "CMakeFiles/bench_ilp_equivalence.dir/bench_ilp_equivalence.cpp.o.d"
  "bench_ilp_equivalence"
  "bench_ilp_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
