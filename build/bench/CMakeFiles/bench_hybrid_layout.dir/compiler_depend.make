# Empty compiler generated dependencies file for bench_hybrid_layout.
# This may be replaced when dependencies are built.
