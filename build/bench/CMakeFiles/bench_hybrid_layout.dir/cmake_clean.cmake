file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_layout.dir/bench_hybrid_layout.cpp.o"
  "CMakeFiles/bench_hybrid_layout.dir/bench_hybrid_layout.cpp.o.d"
  "bench_hybrid_layout"
  "bench_hybrid_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
