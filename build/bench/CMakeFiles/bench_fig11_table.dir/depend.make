# Empty dependencies file for bench_fig11_table.
# This may be replaced when dependencies are built.
