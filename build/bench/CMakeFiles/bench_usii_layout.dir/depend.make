# Empty dependencies file for bench_usii_layout.
# This may be replaced when dependencies are built.
