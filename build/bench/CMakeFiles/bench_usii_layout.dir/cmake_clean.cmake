file(REMOVE_RECURSE
  "CMakeFiles/bench_usii_layout.dir/bench_usii_layout.cpp.o"
  "CMakeFiles/bench_usii_layout.dir/bench_usii_layout.cpp.o.d"
  "bench_usii_layout"
  "bench_usii_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usii_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
