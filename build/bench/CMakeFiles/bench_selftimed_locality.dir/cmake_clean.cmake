file(REMOVE_RECURSE
  "CMakeFiles/bench_selftimed_locality.dir/bench_selftimed_locality.cpp.o"
  "CMakeFiles/bench_selftimed_locality.dir/bench_selftimed_locality.cpp.o.d"
  "bench_selftimed_locality"
  "bench_selftimed_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selftimed_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
