# Empty dependencies file for bench_selftimed_locality.
# This may be replaced when dependencies are built.
