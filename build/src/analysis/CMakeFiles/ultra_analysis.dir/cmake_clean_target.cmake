file(REMOVE_RECURSE
  "libultra_analysis.a"
)
