# Empty compiler generated dependencies file for ultra_analysis.
# This may be replaced when dependencies are built.
