file(REMOVE_RECURSE
  "CMakeFiles/ultra_analysis.dir/floorplan.cpp.o"
  "CMakeFiles/ultra_analysis.dir/floorplan.cpp.o.d"
  "CMakeFiles/ultra_analysis.dir/table.cpp.o"
  "CMakeFiles/ultra_analysis.dir/table.cpp.o.d"
  "CMakeFiles/ultra_analysis.dir/timing_diagram.cpp.o"
  "CMakeFiles/ultra_analysis.dir/timing_diagram.cpp.o.d"
  "libultra_analysis.a"
  "libultra_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
