file(REMOVE_RECURSE
  "libultra_workloads.a"
)
