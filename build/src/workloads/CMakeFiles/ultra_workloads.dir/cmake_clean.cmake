file(REMOVE_RECURSE
  "CMakeFiles/ultra_workloads.dir/generators.cpp.o"
  "CMakeFiles/ultra_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/ultra_workloads.dir/kernels.cpp.o"
  "CMakeFiles/ultra_workloads.dir/kernels.cpp.o.d"
  "libultra_workloads.a"
  "libultra_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
