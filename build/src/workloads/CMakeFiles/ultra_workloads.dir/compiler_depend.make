# Empty compiler generated dependencies file for ultra_workloads.
# This may be replaced when dependencies are built.
