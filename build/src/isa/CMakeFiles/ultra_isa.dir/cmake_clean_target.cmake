file(REMOVE_RECURSE
  "libultra_isa.a"
)
