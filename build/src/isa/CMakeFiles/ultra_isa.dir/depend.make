# Empty dependencies file for ultra_isa.
# This may be replaced when dependencies are built.
