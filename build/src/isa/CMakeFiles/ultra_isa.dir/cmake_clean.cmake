file(REMOVE_RECURSE
  "CMakeFiles/ultra_isa.dir/alu.cpp.o"
  "CMakeFiles/ultra_isa.dir/alu.cpp.o.d"
  "CMakeFiles/ultra_isa.dir/assembler.cpp.o"
  "CMakeFiles/ultra_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/ultra_isa.dir/instruction.cpp.o"
  "CMakeFiles/ultra_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/ultra_isa.dir/latency.cpp.o"
  "CMakeFiles/ultra_isa.dir/latency.cpp.o.d"
  "CMakeFiles/ultra_isa.dir/opcode.cpp.o"
  "CMakeFiles/ultra_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/ultra_isa.dir/program.cpp.o"
  "CMakeFiles/ultra_isa.dir/program.cpp.o.d"
  "libultra_isa.a"
  "libultra_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
