file(REMOVE_RECURSE
  "libultra_datapath.a"
)
