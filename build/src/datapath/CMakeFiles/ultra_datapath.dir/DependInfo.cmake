
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datapath/hybrid.cpp" "src/datapath/CMakeFiles/ultra_datapath.dir/hybrid.cpp.o" "gcc" "src/datapath/CMakeFiles/ultra_datapath.dir/hybrid.cpp.o.d"
  "/root/repo/src/datapath/scheduler.cpp" "src/datapath/CMakeFiles/ultra_datapath.dir/scheduler.cpp.o" "gcc" "src/datapath/CMakeFiles/ultra_datapath.dir/scheduler.cpp.o.d"
  "/root/repo/src/datapath/sequencing.cpp" "src/datapath/CMakeFiles/ultra_datapath.dir/sequencing.cpp.o" "gcc" "src/datapath/CMakeFiles/ultra_datapath.dir/sequencing.cpp.o.d"
  "/root/repo/src/datapath/usi.cpp" "src/datapath/CMakeFiles/ultra_datapath.dir/usi.cpp.o" "gcc" "src/datapath/CMakeFiles/ultra_datapath.dir/usi.cpp.o.d"
  "/root/repo/src/datapath/usii.cpp" "src/datapath/CMakeFiles/ultra_datapath.dir/usii.cpp.o" "gcc" "src/datapath/CMakeFiles/ultra_datapath.dir/usii.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ultra_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
