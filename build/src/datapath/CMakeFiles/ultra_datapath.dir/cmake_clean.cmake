file(REMOVE_RECURSE
  "CMakeFiles/ultra_datapath.dir/hybrid.cpp.o"
  "CMakeFiles/ultra_datapath.dir/hybrid.cpp.o.d"
  "CMakeFiles/ultra_datapath.dir/scheduler.cpp.o"
  "CMakeFiles/ultra_datapath.dir/scheduler.cpp.o.d"
  "CMakeFiles/ultra_datapath.dir/sequencing.cpp.o"
  "CMakeFiles/ultra_datapath.dir/sequencing.cpp.o.d"
  "CMakeFiles/ultra_datapath.dir/usi.cpp.o"
  "CMakeFiles/ultra_datapath.dir/usi.cpp.o.d"
  "CMakeFiles/ultra_datapath.dir/usii.cpp.o"
  "CMakeFiles/ultra_datapath.dir/usii.cpp.o.d"
  "libultra_datapath.a"
  "libultra_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
