# Empty dependencies file for ultra_datapath.
# This may be replaced when dependencies are built.
