
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vlsi/delay.cpp" "src/vlsi/CMakeFiles/ultra_vlsi.dir/delay.cpp.o" "gcc" "src/vlsi/CMakeFiles/ultra_vlsi.dir/delay.cpp.o.d"
  "/root/repo/src/vlsi/layout.cpp" "src/vlsi/CMakeFiles/ultra_vlsi.dir/layout.cpp.o" "gcc" "src/vlsi/CMakeFiles/ultra_vlsi.dir/layout.cpp.o.d"
  "/root/repo/src/vlsi/magic.cpp" "src/vlsi/CMakeFiles/ultra_vlsi.dir/magic.cpp.o" "gcc" "src/vlsi/CMakeFiles/ultra_vlsi.dir/magic.cpp.o.d"
  "/root/repo/src/vlsi/scaling.cpp" "src/vlsi/CMakeFiles/ultra_vlsi.dir/scaling.cpp.o" "gcc" "src/vlsi/CMakeFiles/ultra_vlsi.dir/scaling.cpp.o.d"
  "/root/repo/src/vlsi/three_d.cpp" "src/vlsi/CMakeFiles/ultra_vlsi.dir/three_d.cpp.o" "gcc" "src/vlsi/CMakeFiles/ultra_vlsi.dir/three_d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memory/CMakeFiles/ultra_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/datapath/CMakeFiles/ultra_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ultra_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
