# Empty dependencies file for ultra_vlsi.
# This may be replaced when dependencies are built.
