file(REMOVE_RECURSE
  "libultra_vlsi.a"
)
