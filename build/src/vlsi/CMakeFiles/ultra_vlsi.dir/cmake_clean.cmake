file(REMOVE_RECURSE
  "CMakeFiles/ultra_vlsi.dir/delay.cpp.o"
  "CMakeFiles/ultra_vlsi.dir/delay.cpp.o.d"
  "CMakeFiles/ultra_vlsi.dir/layout.cpp.o"
  "CMakeFiles/ultra_vlsi.dir/layout.cpp.o.d"
  "CMakeFiles/ultra_vlsi.dir/magic.cpp.o"
  "CMakeFiles/ultra_vlsi.dir/magic.cpp.o.d"
  "CMakeFiles/ultra_vlsi.dir/scaling.cpp.o"
  "CMakeFiles/ultra_vlsi.dir/scaling.cpp.o.d"
  "CMakeFiles/ultra_vlsi.dir/three_d.cpp.o"
  "CMakeFiles/ultra_vlsi.dir/three_d.cpp.o.d"
  "libultra_vlsi.a"
  "libultra_vlsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_vlsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
