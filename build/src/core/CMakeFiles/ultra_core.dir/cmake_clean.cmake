file(REMOVE_RECURSE
  "CMakeFiles/ultra_core.dir/exec.cpp.o"
  "CMakeFiles/ultra_core.dir/exec.cpp.o.d"
  "CMakeFiles/ultra_core.dir/fetch.cpp.o"
  "CMakeFiles/ultra_core.dir/fetch.cpp.o.d"
  "CMakeFiles/ultra_core.dir/functional_sim.cpp.o"
  "CMakeFiles/ultra_core.dir/functional_sim.cpp.o.d"
  "CMakeFiles/ultra_core.dir/hybrid_core.cpp.o"
  "CMakeFiles/ultra_core.dir/hybrid_core.cpp.o.d"
  "CMakeFiles/ultra_core.dir/ideal_core.cpp.o"
  "CMakeFiles/ultra_core.dir/ideal_core.cpp.o.d"
  "CMakeFiles/ultra_core.dir/processor.cpp.o"
  "CMakeFiles/ultra_core.dir/processor.cpp.o.d"
  "CMakeFiles/ultra_core.dir/usi_core.cpp.o"
  "CMakeFiles/ultra_core.dir/usi_core.cpp.o.d"
  "CMakeFiles/ultra_core.dir/usii_core.cpp.o"
  "CMakeFiles/ultra_core.dir/usii_core.cpp.o.d"
  "libultra_core.a"
  "libultra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
