
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/exec.cpp" "src/core/CMakeFiles/ultra_core.dir/exec.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/exec.cpp.o.d"
  "/root/repo/src/core/fetch.cpp" "src/core/CMakeFiles/ultra_core.dir/fetch.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/fetch.cpp.o.d"
  "/root/repo/src/core/functional_sim.cpp" "src/core/CMakeFiles/ultra_core.dir/functional_sim.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/functional_sim.cpp.o.d"
  "/root/repo/src/core/hybrid_core.cpp" "src/core/CMakeFiles/ultra_core.dir/hybrid_core.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/hybrid_core.cpp.o.d"
  "/root/repo/src/core/ideal_core.cpp" "src/core/CMakeFiles/ultra_core.dir/ideal_core.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/ideal_core.cpp.o.d"
  "/root/repo/src/core/processor.cpp" "src/core/CMakeFiles/ultra_core.dir/processor.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/processor.cpp.o.d"
  "/root/repo/src/core/usi_core.cpp" "src/core/CMakeFiles/ultra_core.dir/usi_core.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/usi_core.cpp.o.d"
  "/root/repo/src/core/usii_core.cpp" "src/core/CMakeFiles/ultra_core.dir/usii_core.cpp.o" "gcc" "src/core/CMakeFiles/ultra_core.dir/usii_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ultra_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/datapath/CMakeFiles/ultra_datapath.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/ultra_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
