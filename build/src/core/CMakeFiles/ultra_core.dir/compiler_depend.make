# Empty compiler generated dependencies file for ultra_core.
# This may be replaced when dependencies are built.
