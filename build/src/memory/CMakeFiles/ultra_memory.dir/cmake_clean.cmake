file(REMOVE_RECURSE
  "CMakeFiles/ultra_memory.dir/backing_store.cpp.o"
  "CMakeFiles/ultra_memory.dir/backing_store.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/bandwidth.cpp.o"
  "CMakeFiles/ultra_memory.dir/bandwidth.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/branch_predictor.cpp.o"
  "CMakeFiles/ultra_memory.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/butterfly.cpp.o"
  "CMakeFiles/ultra_memory.dir/butterfly.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/cache.cpp.o"
  "CMakeFiles/ultra_memory.dir/cache.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/fat_tree.cpp.o"
  "CMakeFiles/ultra_memory.dir/fat_tree.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/memory_system.cpp.o"
  "CMakeFiles/ultra_memory.dir/memory_system.cpp.o.d"
  "CMakeFiles/ultra_memory.dir/trace_cache.cpp.o"
  "CMakeFiles/ultra_memory.dir/trace_cache.cpp.o.d"
  "libultra_memory.a"
  "libultra_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultra_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
