# Empty compiler generated dependencies file for ultra_memory.
# This may be replaced when dependencies are built.
