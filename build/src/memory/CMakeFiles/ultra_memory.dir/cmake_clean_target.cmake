file(REMOVE_RECURSE
  "libultra_memory.a"
)
