
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/backing_store.cpp" "src/memory/CMakeFiles/ultra_memory.dir/backing_store.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/backing_store.cpp.o.d"
  "/root/repo/src/memory/bandwidth.cpp" "src/memory/CMakeFiles/ultra_memory.dir/bandwidth.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/bandwidth.cpp.o.d"
  "/root/repo/src/memory/branch_predictor.cpp" "src/memory/CMakeFiles/ultra_memory.dir/branch_predictor.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/memory/butterfly.cpp" "src/memory/CMakeFiles/ultra_memory.dir/butterfly.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/butterfly.cpp.o.d"
  "/root/repo/src/memory/cache.cpp" "src/memory/CMakeFiles/ultra_memory.dir/cache.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/cache.cpp.o.d"
  "/root/repo/src/memory/fat_tree.cpp" "src/memory/CMakeFiles/ultra_memory.dir/fat_tree.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/fat_tree.cpp.o.d"
  "/root/repo/src/memory/memory_system.cpp" "src/memory/CMakeFiles/ultra_memory.dir/memory_system.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/memory_system.cpp.o.d"
  "/root/repo/src/memory/trace_cache.cpp" "src/memory/CMakeFiles/ultra_memory.dir/trace_cache.cpp.o" "gcc" "src/memory/CMakeFiles/ultra_memory.dir/trace_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/ultra_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
