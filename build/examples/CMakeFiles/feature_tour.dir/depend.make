# Empty dependencies file for feature_tour.
# This may be replaced when dependencies are built.
