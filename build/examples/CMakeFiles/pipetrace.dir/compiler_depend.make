# Empty compiler generated dependencies file for pipetrace.
# This may be replaced when dependencies are built.
