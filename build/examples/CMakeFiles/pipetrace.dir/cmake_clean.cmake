file(REMOVE_RECURSE
  "CMakeFiles/pipetrace.dir/pipetrace.cpp.o"
  "CMakeFiles/pipetrace.dir/pipetrace.cpp.o.d"
  "pipetrace"
  "pipetrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipetrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
